package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenRows is a fixed fixture spanning the rendering corner cases: a row
// with paper data, a zero-CVS row, and a circuit unknown to the paper table
// (renders zero paper columns).
func goldenRows() []Row {
	return []Row{
		{Name: "C880", OrgPwrUW: 80.12, CVSPct: 15.25, DscalePct: 17.5, GscalePct: 22.75,
			CPUSec: 1.5, CVSSec: 0.01, DscaleSec: 0.25,
			OrgGates: 157, CVSLow: 105, CVSRatio: 0.67, DscaleLow: 111, DscaleRatio: 0.71,
			GscaleLow: 148, GscRatio: 0.94, Sized: 18, AreaInc: 0.095,
			DscaleEvals: 1365, GscaleEvals: 3608},
		{Name: "mux", OrgPwrUW: 18.5, CVSPct: 0, DscalePct: 0, GscalePct: 12,
			OrgGates: 46, GscRatio: 0.5, Sized: 4, AreaInc: 0.03},
		{Name: "notapaper", OrgPwrUW: 5, CVSPct: 2, DscalePct: 2.5, GscalePct: 6,
			OrgGates: 12, CVSLow: 2, CVSRatio: 0.17, DscaleLow: 3, DscaleRatio: 0.25,
			GscaleLow: 7, GscRatio: 0.58, Sized: 1, AreaInc: 0.01},
	}
}

// checkGolden compares rendered output against testdata/<name>.golden,
// rewriting the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/report -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden; if the change is intended re-run with -update.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable1(&buf, goldenRows()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1", buf.Bytes())
}

func TestGoldenTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable2(&buf, goldenRows()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table2", buf.Bytes())
}

func TestGoldenMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, goldenRows()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "markdown", buf.Bytes())
}

// TestGoldenBenchJSON pins the BENCH_*.json schema WriteBenchJSON emits, so
// the machine-readable perf snapshots CI uploads cannot drift silently. The
// environment columns (Go version, GOMAXPROCS) are pinned to fixed values —
// they describe the machine, not the schema.
func TestGoldenBenchJSON(t *testing.T) {
	snap := Snapshot(goldenRows())
	snap.Go = "go1.0-golden"
	snap.MaxProcs = 8
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "benchjson", buf.Bytes())
}
