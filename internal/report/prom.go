package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dualvdd"
)

// ContentTypeProm is the Prometheus text exposition media type served by
// /metricsz?format=prom.
const ContentTypeProm = "text/plain; version=0.0.4; charset=utf-8"

// promMetric is one series of the exposition: name, type, help, and a fixed
// accessor into the Metrics snapshot. The table is ordered — the rendering is
// byte-stable and pinned by a golden test, because dashboards and scrape
// configs are written against it.
type promMetric struct {
	name, typ, help string
	value           func(m dualvdd.Metrics) int64
	// skipZero omits the series when zero: fleet-only gauges stay out of a
	// plain Local's exposition, mirroring their JSON omitempty tags.
	skipZero bool
}

var promMetrics = []promMetric{
	{"dualvdd_jobs_queued", "gauge", "Jobs waiting for a worker.",
		func(m dualvdd.Metrics) int64 { return int64(m.JobsQueued) }, false},
	{"dualvdd_jobs_running", "gauge", "Jobs currently executing.",
		func(m dualvdd.Metrics) int64 { return int64(m.JobsRunning) }, false},
	{"dualvdd_jobs_done_total", "counter", "Jobs finished successfully, including cache hits.",
		func(m dualvdd.Metrics) int64 { return m.JobsDone }, false},
	{"dualvdd_jobs_failed_total", "counter", "Jobs finished in failure.",
		func(m dualvdd.Metrics) int64 { return m.JobsFailed }, false},
	{"dualvdd_jobs_cancelled_total", "counter", "Jobs cancelled before completion.",
		func(m dualvdd.Metrics) int64 { return m.JobsCancelled }, false},
	{"dualvdd_cache_hits_total", "counter", "Submit-time content-cache hits.",
		func(m dualvdd.Metrics) int64 { return m.CacheHits }, false},
	{"dualvdd_cache_misses_total", "counter", "Submit-time content-cache misses.",
		func(m dualvdd.Metrics) int64 { return m.CacheMisses }, false},
	{"dualvdd_cache_entries", "gauge", "Resident result-cache entries.",
		func(m dualvdd.Metrics) int64 { return int64(m.CacheEntries) }, false},
	{"dualvdd_cache_bytes", "gauge", "Result-cache storage footprint in bytes (disk CAS; 0 in memory).",
		func(m dualvdd.Metrics) int64 { return m.CacheBytes }, false},
	{"dualvdd_store_errors_total", "counter", "Failed writes to the durable stores.",
		func(m dualvdd.Metrics) int64 { return m.StoreErrors }, false},
	{"dualvdd_store_degraded", "gauge", "1 while the result cache serves from its in-memory fallback after persistent disk errors.",
		func(m dualvdd.Metrics) int64 { return int64(m.StoreDegraded) }, true},
	{"dualvdd_budget_rejects_total", "counter", "Submissions refused at admission with an exhausted deadline budget.",
		func(m dualvdd.Metrics) int64 { return m.BudgetRejects }, true},
	{"dualvdd_submit_dedups_total", "counter", "Resubmissions absorbed by an in-flight job with the same content address.",
		func(m dualvdd.Metrics) int64 { return m.SubmitDedups }, true},
	{"dualvdd_multi_rail_jobs_total", "counter", "Accepted jobs configured with three or more supply rails.",
		func(m dualvdd.Metrics) int64 { return m.MultiRailJobs }, true},
	{"dualvdd_prep_builds_total", "counter", "Warm prepared-state constructions.",
		func(m dualvdd.Metrics) int64 { return m.PrepBuilds }, true},
	{"dualvdd_prep_reuses_total", "counter", "Runs that reused a warm prepared state.",
		func(m dualvdd.Metrics) int64 { return m.PrepReuses }, true},
	{"dualvdd_prep_groups", "gauge", "Resident warm prepared-state groups.",
		func(m dualvdd.Metrics) int64 { return int64(m.PrepGroups) }, true},
	{"dualvdd_sta_evals_total", "counter", "Incremental timing evaluations spent by completed runs.",
		func(m dualvdd.Metrics) int64 { return m.STAEvals }, false},
	{"dualvdd_cand_evals_total", "counter", "Dscale candidate re-evaluations spent by completed runs.",
		func(m dualvdd.Metrics) int64 { return m.CandEvals }, false},
	{"dualvdd_sim_ns_total", "counter", "Logic-simulation wall clock spent by completed runs, in nanoseconds.",
		func(m dualvdd.Metrics) int64 { return m.SimNs }, false},
	{"dualvdd_fleet_workers_live", "gauge", "Registered fleet workers currently healthy.",
		func(m dualvdd.Metrics) int64 { return int64(m.WorkersLive) }, true},
	{"dualvdd_fleet_workers_dead", "gauge", "Registered fleet workers currently failed.",
		func(m dualvdd.Metrics) int64 { return int64(m.WorkersDead) }, true},
	{"dualvdd_fleet_points_in_flight", "gauge", "Accepted fleet jobs not yet terminal.",
		func(m dualvdd.Metrics) int64 { return int64(m.PointsInFlight) }, true},
	{"dualvdd_fleet_redispatches_total", "counter", "Jobs moved off a dead worker onto a live one.",
		func(m dualvdd.Metrics) int64 { return m.Redispatches }, true},
	{"dualvdd_fleet_quarantined_jobs_total", "counter", "Jobs failed as poison after exhausting their re-dispatch budget.",
		func(m dualvdd.Metrics) int64 { return m.QuarantinedJobs }, true},
	{"dualvdd_fleet_admission_rejects_total", "counter", "Submissions refused at admission (quota or rate limit).",
		func(m dualvdd.Metrics) int64 { return m.AdmissionRejects }, true},
}

// WriteMetricsProm renders the counters snapshot in the Prometheus text
// exposition format (version 0.0.4). The output is deterministic: series in
// the fixed table order above, per-tenant reject series sorted by tenant.
// It is the second pinned encoding of /metricsz, next to the JSON one.
func WriteMetricsProm(w io.Writer, m dualvdd.Metrics) error {
	var b strings.Builder
	for _, pm := range promMetrics {
		v := pm.value(m)
		if pm.skipZero && v == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", pm.name, pm.help, pm.name, pm.typ, pm.name, v)
	}
	if len(m.TenantRejects) > 0 {
		const name = "dualvdd_fleet_tenant_admission_rejects_total"
		fmt.Fprintf(&b, "# HELP %s Admission rejects per tenant.\n# TYPE %s counter\n", name, name)
		tenants := make([]string, 0, len(m.TenantRejects))
		for t := range m.TenantRejects {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		for _, t := range tenants {
			fmt.Fprintf(&b, "%s{tenant=\"%s\"} %d\n", name, promLabel(t), m.TenantRejects[t])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promLabel escapes a label value per the exposition format (backslash,
// quote, newline).
func promLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
