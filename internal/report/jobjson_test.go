package report

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"dualvdd"
)

func TestJobRequestRoundTrip(t *testing.T) {
	job := dualvdd.BenchmarkJob("C880",
		dualvdd.WithSeed(7),
		dualvdd.WithVoltages(5.0, 3.9),
		dualvdd.WithAlgorithms(dualvdd.AlgoDscale, dualvdd.AlgoGscale),
	)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, RequestFromJob(job)); err != nil {
		t.Fatal(err)
	}
	var back JobRequest
	if err := DecodeJSON(&buf, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Job(), job) {
		t.Fatalf("job drifted over the wire:\n got %+v\nwant %+v", back.Job(), job)
	}
}

func TestJobRequestDefaultsConfig(t *testing.T) {
	var req JobRequest
	if err := DecodeJSON(strings.NewReader(`{"benchmark":"x2"}`), &req); err != nil {
		t.Fatal(err)
	}
	job := req.Job()
	if !reflect.DeepEqual(job.Config, dualvdd.DefaultConfig()) {
		t.Fatalf("omitted config did not default: %+v", job.Config)
	}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJobRequestStableEncoding(t *testing.T) {
	// The request body is wire contract; pin its field names.
	b, err := json.Marshal(RequestFromJob(dualvdd.BenchmarkJob("x2", dualvdd.WithAlgorithms(dualvdd.AlgoCVS))))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"benchmark":"x2","config":{"vhigh":5,"vlow":4.3,"slack_factor":1.2,` +
		`"max_area_increase":0.1,"max_iter":10,"sim_words":256,"seed":1,"fclk_hz":20000000},` +
		`"algorithms":["CVS"]}`
	if string(b) != want {
		t.Fatalf("request encoding drifted:\n got %s\nwant %s", b, want)
	}
}

func TestDecodeJSONRejectsTrailingData(t *testing.T) {
	var req JobRequest
	if err := DecodeJSON(strings.NewReader(`{"benchmark":"x2"}{"benchmark":"b9"}`), &req); err == nil {
		t.Fatal("trailing body accepted")
	}
}
