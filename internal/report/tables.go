package report

import (
	"fmt"
	"io"
	"strings"
)

// Row is one circuit's measured results across both tables.
type Row struct {
	Name     string
	OrgPwrUW float64
	// Percent improvements over the original power.
	CVSPct, DscalePct, GscalePct float64
	// Gscale wall-clock seconds (the paper's CPU column).
	CPUSec float64
	// Per-algorithm wall-clock seconds, so scaling-loop speedups are
	// visible per table row in benchmark output.
	CVSSec, DscaleSec float64
	// SimSec is the wall clock the three runs spent in logic simulation
	// (activity estimation plus final power measurement).
	SimSec float64
	// Incremental-STA gate evaluations spent by Dscale and Gscale.
	DscaleEvals, GscaleEvals int64
	// DscaleCandEvals counts Dscale candidate-cache re-evaluations; the
	// full-rescan equivalent is OrgGates × Dscale rounds.
	DscaleCandEvals int64
	// Profiles (Table 2).
	OrgGates                        int
	CVSLow, DscaleLow, GscaleLow    int
	CVSRatio, DscaleRatio, GscRatio float64
	Sized                           int
	AreaInc                         float64
	DscaleLCs                       int
}

// Averages computes the column averages the paper reports.
func Averages(rows []Row) Row {
	var avg Row
	if len(rows) == 0 {
		return avg
	}
	for _, r := range rows {
		avg.CVSPct += r.CVSPct
		avg.DscalePct += r.DscalePct
		avg.GscalePct += r.GscalePct
		avg.CVSRatio += r.CVSRatio
		avg.DscaleRatio += r.DscaleRatio
		avg.GscRatio += r.GscRatio
		avg.AreaInc += r.AreaInc
	}
	n := float64(len(rows))
	avg.Name = "average"
	avg.CVSPct /= n
	avg.DscalePct /= n
	avg.GscalePct /= n
	avg.CVSRatio /= n
	avg.DscaleRatio /= n
	avg.GscRatio /= n
	avg.AreaInc /= n
	return avg
}

// WriteTable1 renders the measured results in the layout of the paper's
// Table 1 ("Improvement over the Original Power (%)"), with the published
// numbers alongside for comparison.
func WriteTable1(w io.Writer, rows []Row) error {
	ew := &errW{w: w}
	ew.p("Table 1: Improvement over the Original Power (%%)  [measured | paper]\n")
	ew.p("%-10s %12s %21s %21s %21s %9s\n",
		"circuit", "OrgPwr(uW)", "CVS", "Dscale", "Gscale", "CPU(s)")
	for _, r := range rows {
		p, _ := PaperByName(r.Name)
		ew.p("%-10s %6.2f|%7.2f %8.2f | %8.2f %8.2f | %8.2f %8.2f | %8.2f %9.2f\n",
			r.Name, r.OrgPwrUW, p.OrgPwrUW,
			r.CVSPct, p.CVSPct, r.DscalePct, p.DscalePct, r.GscalePct, p.GscalePct,
			r.CPUSec)
	}
	avg := Averages(rows)
	ew.p("%-10s %14s %8.2f %8.2f | %8.2f %8.2f | %8.2f %8.2f\n",
		"average", "", avg.CVSPct, PaperAverages.CVSPct,
		avg.DscalePct, PaperAverages.DscalePct,
		avg.GscalePct, PaperAverages.GscalePct)
	return ew.err
}

// WriteTable2 renders the measured profiles in the layout of the paper's
// Table 2 ("Profiles").
func WriteTable2(w io.Writer, rows []Row) error {
	ew := &errW{w: w}
	ew.p("Table 2: Profiles  [measured | paper ratio]\n")
	ew.p("%-10s %5s | %5s %5s %5s | %5s %5s %5s | %5s %5s %5s | %5s %7s\n",
		"circuit", "Org",
		"CVS#", "r", "pr", "Ds#", "r", "pr", "Gs#", "r", "pr", "sized", "areaInc")
	for _, r := range rows {
		p, _ := PaperByName(r.Name)
		ew.p("%-10s %5d | %5d %5.2f %5.2f | %5d %5.2f %5.2f | %5d %5.2f %5.2f | %5d %7.2f\n",
			r.Name, r.OrgGates,
			r.CVSLow, r.CVSRatio, p.CVSRatio,
			r.DscaleLow, r.DscaleRatio, p.DscaleRatio,
			r.GscaleLow, r.GscRatio, p.GscaleRatio,
			r.Sized, r.AreaInc)
	}
	avg := Averages(rows)
	ew.p("%-10s %5s | %11.2f %5.2f | %11.2f %5.2f | %11.2f %5.2f | %5s %7.2f\n",
		"average", "",
		avg.CVSRatio, PaperAverages.CVSRatio,
		avg.DscaleRatio, PaperAverages.DscaleRatio,
		avg.GscRatio, PaperAverages.GscaleRatio,
		"", avg.AreaInc)
	return ew.err
}

// WriteMarkdown renders both tables as a Markdown section for EXPERIMENTS.md.
func WriteMarkdown(w io.Writer, rows []Row) error {
	ew := &errW{w: w}
	ew.p("### Table 1 — Improvement over the original power (%%)\n\n")
	ew.p("| circuit | OrgPwr µW (paper) | CVS (paper) | Dscale (paper) | Gscale (paper) | Gscale CPU s (paper) |\n")
	ew.p("|---|---|---|---|---|---|\n")
	for _, r := range rows {
		p, _ := PaperByName(r.Name)
		ew.p("| %s | %.2f (%.2f) | %.2f (%.2f) | %.2f (%.2f) | %.2f (%.2f) | %.2f (%.2f) |\n",
			r.Name, r.OrgPwrUW, p.OrgPwrUW, r.CVSPct, p.CVSPct,
			r.DscalePct, p.DscalePct, r.GscalePct, p.GscalePct, r.CPUSec, p.CPUSec)
	}
	avg := Averages(rows)
	ew.p("| **average** | | **%.2f** (%.2f) | **%.2f** (%.2f) | **%.2f** (%.2f) | |\n\n",
		avg.CVSPct, PaperAverages.CVSPct, avg.DscalePct, PaperAverages.DscalePct,
		avg.GscalePct, PaperAverages.GscalePct)

	ew.p("### Table 2 — Profiles\n\n")
	ew.p("| circuit | gates (paper) | CVS low ratio (paper) | Dscale low ratio (paper) | Gscale low ratio (paper) | sized (paper) | area inc (paper) |\n")
	ew.p("|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		p, _ := PaperByName(r.Name)
		ew.p("| %s | %d (%d) | %.2f (%.2f) | %.2f (%.2f) | %.2f (%.2f) | %d (%d) | %.2f (%.2f) |\n",
			r.Name, r.OrgGates, p.OrgGates, r.CVSRatio, p.CVSRatio,
			r.DscaleRatio, p.DscaleRatio, r.GscRatio, p.GscaleRatio,
			r.Sized, p.Sized, r.AreaInc, p.AreaInc)
	}
	ew.p("| **average** | | **%.2f** (%.2f) | **%.2f** (%.2f) | **%.2f** (%.2f) | | **%.2f** (%.2f) |\n",
		avg.CVSRatio, PaperAverages.CVSRatio, avg.DscaleRatio, PaperAverages.DscaleRatio,
		avg.GscRatio, PaperAverages.GscaleRatio, avg.AreaInc, PaperAverages.Area)
	return ew.err
}

type errW struct {
	w   io.Writer
	err error
}

func (e *errW) p(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// ShapeChecks verifies the qualitative claims of the paper's §4 against
// measured rows, returning human-readable failures (empty = all hold).
// These are the "trend shape" assertions: orderings and rough factors, not
// absolute numbers.
func ShapeChecks(rows []Row) []string {
	var fails []string
	avg := Averages(rows)
	if !(avg.GscalePct > avg.DscalePct && avg.DscalePct >= avg.CVSPct) {
		fails = append(fails, fmt.Sprintf(
			"average ordering violated: CVS %.2f, Dscale %.2f, Gscale %.2f",
			avg.CVSPct, avg.DscalePct, avg.GscalePct))
	}
	if avg.GscalePct < 1.4*avg.CVSPct {
		fails = append(fails, fmt.Sprintf(
			"Gscale should beat CVS by a wide factor (paper 1.86x): got %.2fx",
			avg.GscalePct/avg.CVSPct))
	}
	if avg.AreaInc > 0.10 {
		fails = append(fails, fmt.Sprintf("average area increase %.3f exceeds the 10%% cap", avg.AreaInc))
	}
	zeroCVS := 0
	for _, r := range rows {
		if r.CVSPct < 0.5 {
			zeroCVS++
		}
		if r.DscalePct < r.CVSPct-1e-9 {
			fails = append(fails, fmt.Sprintf("%s: Dscale (%.2f) below CVS (%.2f)", r.Name, r.DscalePct, r.CVSPct))
		}
		if r.GscalePct < r.CVSPct-1.0 {
			fails = append(fails, fmt.Sprintf("%s: Gscale (%.2f) clearly below CVS (%.2f)", r.Name, r.GscalePct, r.CVSPct))
		}
		if r.AreaInc > 0.101 {
			fails = append(fails, fmt.Sprintf("%s: area increase %.3f over budget", r.Name, r.AreaInc))
		}
	}
	// The paper finds 7 circuits where CVS achieves nothing; a suite of any
	// size must reproduce the existence of such circuits (balanced
	// structures that leave CVS no non-critical region).
	need := 1
	if len(rows) >= 10 {
		need = 2
	}
	if zeroCVS < need {
		fails = append(fails, fmt.Sprintf("only %d circuits with near-zero CVS; paper has 7 of 39", zeroCVS))
	}
	return fails
}

// String pretty-prints a row single-line (for logs).
func (r Row) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: org=%.2fuW CVS=%.2f%% Dscale=%.2f%% Gscale=%.2f%% low=%.2f/%.2f/%.2f sized=%d area=+%.1f%%",
		r.Name, r.OrgPwrUW, r.CVSPct, r.DscalePct, r.GscalePct,
		r.CVSRatio, r.DscaleRatio, r.GscRatio, r.Sized, r.AreaInc*100)
	return b.String()
}
