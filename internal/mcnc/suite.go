package mcnc

import (
	"fmt"
	"hash/fnv"

	"dualvdd/internal/logic"
)

// Spec describes one benchmark of the paper's 39-circuit MCNC test bed.
type Spec struct {
	// Name is the MCNC circuit name as printed in Tables 1 and 2.
	Name string
	// PaperGates is the paper's Table 2 "Org" gate count, the size target
	// the synthetic stand-in aims for.
	PaperGates int
	// Kind documents which generator produces the stand-in.
	Kind string
	// Build generates the technology-independent network.
	Build func() *logic.Network
}

// nameSeed derives a deterministic per-circuit random seed.
func nameSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// rnd declares a random-logic benchmark stand-in.
func rnd(name string, paperGates, pis, pos, nodes int) Spec {
	return Spec{
		Name:       name,
		PaperGates: paperGates,
		Kind:       "random-logic",
		Build: func() *logic.Network {
			return randomNet(name, nameSeed(name), pis, pos, nodes, false)
		},
	}
}

// rndFold is rnd with output folding: loose logic is reduced into a few
// output trees, reproducing the CVS-hostile narrow-output structure of
// circuits like i2 and i3 (both nearly zero in the paper's Table 2).
func rndFold(name string, paperGates, pis, pos, nodes int) Spec {
	return Spec{
		Name:       name,
		PaperGates: paperGates,
		Kind:       "random-logic-folded",
		Build: func() *logic.Network {
			return randomNet(name, nameSeed(name), pis, pos, nodes, true)
		},
	}
}

// specs lists the full suite in the order of the paper's tables. Node counts
// of the random stand-ins were calibrated so the mapped gate counts land near
// the paper's Table 2 "Org" column under the default library and mapper.
var specs = []Spec{
	{Name: "C1355", PaperGates: 390, Kind: "sec-ecc",
		Build: func() *logic.Network { return ECC("C1355", 32, 6) }},
	rnd("C2670", 583, 157, 64, 345),
	rnd("C3540", 996, 50, 22, 590),
	{Name: "C432", PaperGates: 159, Kind: "priority-interrupt",
		Build: func() *logic.Network { return Priority("C432", 9, 3) }},
	{Name: "C499", PaperGates: 390, Kind: "sec-ecc",
		Build: func() *logic.Network { return ECC("C499", 32, 6) }},
	rnd("C5315", 1318, 178, 123, 780),
	rnd("C7552", 1957, 207, 108, 1160),
	{Name: "C880", PaperGates: 295, Kind: "alu",
		Build: func() *logic.Network { return ALU("C880", 9) }},
	{Name: "alu2", PaperGates: 291, Kind: "alu",
		Build: func() *logic.Network { return ALU("alu2", 8) }},
	{Name: "alu4", PaperGates: 573, Kind: "alu",
		Build: func() *logic.Network { return ALU("alu4", 16) }},
	rnd("apex6", 664, 135, 99, 393),
	rnd("apex7", 217, 49, 37, 128),
	rnd("b9", 111, 41, 21, 66),
	rnd("dalu", 706, 75, 16, 418),
	rnd("des", 2795, 256, 245, 1655),
	rnd("f51m", 81, 8, 8, 48),
	rnd("i1", 35, 25, 16, 21),
	rnd("i10", 2121, 257, 224, 1255),
	rndFold("i2", 102, 201, 1, 60),
	rndFold("i3", 114, 132, 6, 68),
	rnd("i5", 199, 133, 66, 118),
	rnd("i6", 456, 138, 67, 270),
	rnd("k2", 880, 45, 45, 520),
	rnd("lal", 86, 26, 19, 51),
	{Name: "mux", PaperGates: 60, Kind: "mux-tree",
		Build: func() *logic.Network { return MuxTree("mux", 4) }},
	{Name: "my_adder", PaperGates: 179, Kind: "ripple-adder",
		Build: func() *logic.Network { return Adder("my_adder", 32) }},
	rnd("pair", 1351, 173, 137, 800),
	rnd("pcle", 68, 19, 9, 40),
	rnd("pm1", 43, 16, 13, 26),
	rnd("rot", 585, 135, 107, 346),
	rnd("sct", 73, 19, 15, 44),
	rnd("term1", 136, 34, 10, 81),
	rnd("too_large", 253, 38, 3, 150),
	rnd("vda", 485, 17, 39, 287),
	rnd("x1", 260, 51, 35, 154),
	rnd("x2", 39, 10, 7, 24),
	rnd("x3", 625, 135, 99, 370),
	rnd("x4", 270, 94, 71, 160),
	{Name: "z4ml", PaperGates: 41, Kind: "ripple-adder",
		Build: func() *logic.Network { return Adder("z4ml", 6) }},
}

// Specs returns the benchmark descriptors in the paper's table order. The
// returned slice is shared; treat it as read-only.
func Specs() []Spec { return specs }

// Names returns the 39 circuit names in table order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Generate builds the stand-in network for a named benchmark.
func Generate(name string) (*logic.Network, error) {
	for _, s := range specs {
		if s.Name == name {
			n := s.Build()
			if err := n.Validate(); err != nil {
				return nil, fmt.Errorf("mcnc: generator for %s produced invalid network: %w", name, err)
			}
			return n, nil
		}
	}
	return nil, fmt.Errorf("mcnc: unknown benchmark %q", name)
}

// PaperGates returns the paper's Table 2 gate count for a benchmark, or 0 if
// unknown.
func PaperGates(name string) int {
	for _, s := range specs {
		if s.Name == name {
			return s.PaperGates
		}
	}
	return 0
}
