package mcnc

import (
	"fmt"

	"dualvdd/internal/logic"
)

// Adder builds an n-bit ripple-carry adder (the structure of MCNC's
// "my_adder"): per bit a half-parity x=a⊕b, sum s=x⊕cin and a majority
// carry.
func Adder(name string, bits int) *logic.Network {
	n := logic.New(name)
	a := make([]logic.Signal, bits)
	b := make([]logic.Signal, bits)
	for i := 0; i < bits; i++ {
		a[i] = n.AddPI(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < bits; i++ {
		b[i] = n.AddPI(fmt.Sprintf("b%d", i))
	}
	carry := n.AddPI("cin")
	for i := 0; i < bits; i++ {
		x := n.AddNode(fmt.Sprintf("x%d", i), []logic.Signal{a[i], b[i]},
			[]logic.Cube{"10", "01"})
		s := n.AddNode(fmt.Sprintf("s%d", i), []logic.Signal{x, carry},
			[]logic.Cube{"10", "01"})
		co := n.AddNode(fmt.Sprintf("c%d", i+1), []logic.Signal{a[i], b[i], carry},
			[]logic.Cube{"11-", "-11", "1-1"})
		n.AddPO(fmt.Sprintf("sum%d", i), s)
		carry = co
	}
	n.AddPO("cout", carry)
	return n
}

// ALU builds an n-bit 4-operation ALU (ADD, AND, OR, XOR) with an
// all-zero flag, the flavour of MCNC's alu2/alu4/C880.
func ALU(name string, bits int) *logic.Network {
	n := logic.New(name)
	a := make([]logic.Signal, bits)
	b := make([]logic.Signal, bits)
	for i := 0; i < bits; i++ {
		a[i] = n.AddPI(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < bits; i++ {
		b[i] = n.AddPI(fmt.Sprintf("b%d", i))
	}
	op0 := n.AddPI("op0")
	op1 := n.AddPI("op1")
	carry := n.AddPI("cin")
	for i := 0; i < bits; i++ {
		and := n.AddNode(fmt.Sprintf("and%d", i), []logic.Signal{a[i], b[i]},
			[]logic.Cube{"11"})
		or := n.AddNode(fmt.Sprintf("or%d", i), []logic.Signal{a[i], b[i]},
			[]logic.Cube{"1-", "-1"})
		xor := n.AddNode(fmt.Sprintf("xor%d", i), []logic.Signal{a[i], b[i]},
			[]logic.Cube{"10", "01"})
		sum := n.AddNode(fmt.Sprintf("sum%d", i), []logic.Signal{xor, carry},
			[]logic.Cube{"10", "01"})
		co := n.AddNode(fmt.Sprintf("c%d", i+1), []logic.Signal{a[i], b[i], carry},
			[]logic.Cube{"11-", "-11", "1-1"})
		carry = co
		// Result select over (op1, op0, and, or, xor-sum...): a 6-input
		// one-hot mux cover.
		r := n.AddNode(fmt.Sprintf("r%d", i),
			[]logic.Signal{op1, op0, and, or, xor, sum},
			[]logic.Cube{"001---", "01-1--", "10--1-", "11---1"})
		n.AddPO(fmt.Sprintf("res%d", i), r)
	}
	n.AddPO("cout", carry)
	return n
}

// orTree folds signals with binary OR nodes and returns the root.
func orTree(n *logic.Network, prefix string, xs []logic.Signal) logic.Signal {
	cnt := 0
	for len(xs) > 1 {
		var next []logic.Signal
		for i := 0; i+1 < len(xs); i += 2 {
			next = append(next, n.AddNode(fmt.Sprintf("%s%d", prefix, cnt),
				[]logic.Signal{xs[i], xs[i+1]}, []logic.Cube{"1-", "-1"}))
			cnt++
		}
		if len(xs)%2 == 1 {
			next = append(next, xs[len(xs)-1])
		}
		xs = next
	}
	return xs[0]
}

// xorTree folds signals with binary XOR nodes and returns the root.
func xorTree(n *logic.Network, prefix string, xs []logic.Signal) logic.Signal {
	cnt := 0
	for len(xs) > 1 {
		var next []logic.Signal
		for i := 0; i+1 < len(xs); i += 2 {
			next = append(next, n.AddNode(fmt.Sprintf("%s%d", prefix, cnt),
				[]logic.Signal{xs[i], xs[i+1]}, []logic.Cube{"10", "01"}))
			cnt++
		}
		if len(xs)%2 == 1 {
			next = append(next, xs[len(xs)-1])
		}
		xs = next
	}
	return xs[0]
}

// ECC builds a single-error-correction circuit over `bits` data inputs in
// the style of C499/C1355 (32-bit SEC): syndrome parity trees over indexed
// subsets plus per-bit correctors.
func ECC(name string, bits, synBits int) *logic.Network {
	if 1<<uint(synBits) <= bits {
		panic(fmt.Sprintf("mcnc: ECC needs 2^synBits > bits to encode one-based positions (%d, %d)", bits, synBits))
	}
	n := logic.New(name)
	data := make([]logic.Signal, bits)
	for i := 0; i < bits; i++ {
		data[i] = n.AddPI(fmt.Sprintf("d%d", i))
	}
	checks := make([]logic.Signal, synBits)
	for j := 0; j < synBits; j++ {
		checks[j] = n.AddPI(fmt.Sprintf("chk%d", j))
	}
	// Syndrome j: parity of all data bits whose one-based position has bit
	// j set, XORed with the incoming check bit. Positions are one-based à la
	// Hamming so the all-zero syndrome unambiguously means "no error".
	syn := make([]logic.Signal, synBits)
	for j := 0; j < synBits; j++ {
		var members []logic.Signal
		for i := 0; i < bits; i++ {
			if (i+1)>>uint(j)&1 == 1 {
				members = append(members, data[i])
			}
		}
		members = append(members, checks[j])
		syn[j] = xorTree(n, fmt.Sprintf("syn%d_", j), members)
	}
	// Correct each data bit: flip when the syndrome equals its position.
	for i := 0; i < bits; i++ {
		fanin := make([]logic.Signal, synBits)
		row := make([]byte, synBits)
		copy(fanin, syn)
		for j := 0; j < synBits; j++ {
			if (i+1)>>uint(j)&1 == 1 {
				row[j] = '1'
			} else {
				row[j] = '0'
			}
		}
		match := n.AddNode(fmt.Sprintf("m%d", i), fanin, []logic.Cube{logic.Cube(row)})
		out := n.AddNode(fmt.Sprintf("o%d", i), []logic.Signal{data[i], match},
			[]logic.Cube{"10", "01"})
		n.AddPO(fmt.Sprintf("out%d", i), out)
	}
	return n
}

// MuxTree builds a 2^sel : 1 multiplexer (MCNC's "mux").
func MuxTree(name string, sel int) *logic.Network {
	n := logic.New(name)
	words := 1 << uint(sel)
	data := make([]logic.Signal, words)
	for i := 0; i < words; i++ {
		data[i] = n.AddPI(fmt.Sprintf("d%d", i))
	}
	selSig := make([]logic.Signal, sel)
	for j := 0; j < sel; j++ {
		selSig[j] = n.AddPI(fmt.Sprintf("s%d", j))
	}
	layer := data
	for j := 0; j < sel; j++ {
		var next []logic.Signal
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, n.AddNode(fmt.Sprintf("mx%d_%d", j, i/2),
				[]logic.Signal{layer[i], layer[i+1], selSig[j]},
				[]logic.Cube{"1-0", "-11"}))
		}
		layer = next
	}
	n.AddPO("out", layer[0])
	return n
}

// Priority builds `ways` interleaved priority-encoder channels over `width`
// request lines each, with an acknowledge combine — the flavour of C432's
// 27-channel interrupt controller.
func Priority(name string, width, ways int) *logic.Network {
	n := logic.New(name)
	req := make([][]logic.Signal, ways)
	for w := 0; w < ways; w++ {
		req[w] = make([]logic.Signal, width)
		for i := 0; i < width; i++ {
			req[w][i] = n.AddPI(fmt.Sprintf("r%d_%d", w, i))
		}
	}
	en := make([]logic.Signal, ways)
	for w := 0; w < ways; w++ {
		en[w] = n.AddPI(fmt.Sprintf("en%d", w))
	}
	var anyGrant []logic.Signal
	for w := 0; w < ways; w++ {
		// noHigher[i] = none of req[i+1..width-1] asserted.
		noHigher := make([]logic.Signal, width)
		for i := width - 1; i >= 0; i-- {
			if i == width-1 {
				noHigher[i] = n.AddNode(fmt.Sprintf("nh%d_%d", w, i),
					[]logic.Signal{req[w][i]}, []logic.Cube{"0"})
				continue
			}
			noHigher[i] = n.AddNode(fmt.Sprintf("nh%d_%d", w, i),
				[]logic.Signal{req[w][i+1], noHigher[i+1]}, []logic.Cube{"01"})
		}
		for i := 0; i < width; i++ {
			var grant logic.Signal
			if i == width-1 {
				grant = n.AddNode(fmt.Sprintf("g%d_%d", w, i),
					[]logic.Signal{req[w][i], en[w]}, []logic.Cube{"11"})
			} else {
				grant = n.AddNode(fmt.Sprintf("g%d_%d", w, i),
					[]logic.Signal{req[w][i], noHigher[i], en[w]}, []logic.Cube{"111"})
			}
			n.AddPO(fmt.Sprintf("grant%d_%d", w, i), grant)
			anyGrant = append(anyGrant, grant)
		}
	}
	n.AddPO("any", orTree(n, "any_", anyGrant))
	return n
}

// Decoder builds a k→2^k line decoder with an enable.
func Decoder(name string, k int) *logic.Network {
	n := logic.New(name)
	sel := make([]logic.Signal, k)
	for i := 0; i < k; i++ {
		sel[i] = n.AddPI(fmt.Sprintf("s%d", i))
	}
	en := n.AddPI("en")
	fanin := append(append([]logic.Signal(nil), sel...), en)
	for v := 0; v < 1<<uint(k); v++ {
		row := make([]byte, k+1)
		for i := 0; i < k; i++ {
			if v>>uint(i)&1 == 1 {
				row[i] = '1'
			} else {
				row[i] = '0'
			}
		}
		row[k] = '1'
		out := n.AddNode(fmt.Sprintf("y%d", v), fanin, []logic.Cube{logic.Cube(row)})
		n.AddPO(fmt.Sprintf("o%d", v), out)
	}
	return n
}

// Comparator builds an n-bit magnitude comparator (eq/gt/lt outputs).
func Comparator(name string, bits int) *logic.Network {
	n := logic.New(name)
	a := make([]logic.Signal, bits)
	b := make([]logic.Signal, bits)
	for i := 0; i < bits; i++ {
		a[i] = n.AddPI(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < bits; i++ {
		b[i] = n.AddPI(fmt.Sprintf("b%d", i))
	}
	// MSB-first ripple: eq chain and gt accumulation.
	var eqChain, gt logic.Signal = logic.None, logic.None
	for i := bits - 1; i >= 0; i-- {
		eq := n.AddNode(fmt.Sprintf("eq%d", i), []logic.Signal{a[i], b[i]},
			[]logic.Cube{"11", "00"})
		gti := n.AddNode(fmt.Sprintf("gtb%d", i), []logic.Signal{a[i], b[i]},
			[]logic.Cube{"10"})
		if eqChain == logic.None {
			eqChain, gt = eq, gti
			continue
		}
		gt = n.AddNode(fmt.Sprintf("gt%d", i), []logic.Signal{gt, eqChain, gti},
			[]logic.Cube{"1--", "-11"})
		eqChain = n.AddNode(fmt.Sprintf("eqc%d", i), []logic.Signal{eqChain, eq},
			[]logic.Cube{"11"})
	}
	lt := n.AddNode("lt", []logic.Signal{eqChain, gt}, []logic.Cube{"00"})
	n.AddPO("eq", eqChain)
	n.AddPO("gt", gt)
	n.AddPO("lt", lt)
	return n
}
