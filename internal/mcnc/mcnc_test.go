package mcnc

import (
	"testing"

	"dualvdd/internal/logic"
)

func TestSuiteHas39Circuits(t *testing.T) {
	if got := len(Names()); got != 39 {
		t.Fatalf("suite has %d circuits, the paper's test bed has 39", got)
	}
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate circuit %s", n)
		}
		seen[n] = true
	}
}

func TestEveryGeneratorValidates(t *testing.T) {
	for _, name := range Names() {
		n, err := Generate(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(n.PIs) == 0 || len(n.POs) == 0 || n.NumLiveNodes() == 0 {
			t.Fatalf("%s: degenerate network (%d PIs, %d nodes, %d POs)",
				name, len(n.PIs), n.NumLiveNodes(), len(n.POs))
		}
		// Sweeping must not gut the circuit: the generator wires everything
		// toward outputs, so at most a small fraction may be dangling.
		before := n.NumLiveNodes()
		n.Sweep()
		if after := n.NumLiveNodes(); float64(after) < 0.85*float64(before) {
			t.Fatalf("%s: sweep removed %d of %d nodes — generator leaves dead logic",
				name, before-after, before)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range []string{"des", "b9", "C880", "i2"} {
		a, err := Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumLiveNodes() != b.NumLiveNodes() || len(a.PIs) != len(b.PIs) {
			t.Fatalf("%s: non-deterministic generation", name)
		}
		for i := range a.Nodes {
			if a.Nodes[i].Name != b.Nodes[i].Name || len(a.Nodes[i].Cubes) != len(b.Nodes[i].Cubes) {
				t.Fatalf("%s: node %d differs between generations", name, i)
			}
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Generate("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if PaperGates("nope") != 0 {
		t.Fatal("unknown name has paper gates")
	}
	if PaperGates("des") != 2795 {
		t.Fatalf("des paper gates = %d", PaperGates("des"))
	}
}

func TestAdderAdds(t *testing.T) {
	n := Adder("add", 8)
	// a=0b10110101, b=0b01001011, cin=1 -> sum 0b00000001 carry out 1.
	a, b := uint64(0b10110101), uint64(0b01001011)
	words := make([]uint64, len(n.PIs))
	for i := 0; i < 8; i++ {
		if a>>uint(i)&1 == 1 {
			words[i] = ^uint64(0)
		}
		if b>>uint(i)&1 == 1 {
			words[8+i] = ^uint64(0)
		}
	}
	words[16] = ^uint64(0) // cin = 1
	po, _, err := n.Eval(words, false)
	if err != nil {
		t.Fatal(err)
	}
	want := a + b + 1
	for i := 0; i < 8; i++ {
		bit := po[i] & 1
		if bit != want>>uint(i)&1 {
			t.Fatalf("sum bit %d = %d, want %d", i, bit, want>>uint(i)&1)
		}
	}
	if po[8]&1 != want>>8&1 {
		t.Fatalf("carry out = %d, want %d", po[8]&1, want>>8&1)
	}
}

func TestMuxSelects(t *testing.T) {
	n := MuxTree("m", 3)
	words := make([]uint64, len(n.PIs))
	// data[5] = 1, select 5 (s0=1, s1=0, s2=1).
	words[5] = ^uint64(0)
	words[8] = ^uint64(0)  // s0
	words[10] = ^uint64(0) // s2
	po, _, err := n.Eval(words, false)
	if err != nil {
		t.Fatal(err)
	}
	if po[0]&1 != 1 {
		t.Fatal("mux did not select data[5]")
	}
	// Different select: expect 0.
	words[8] = 0
	po, _, _ = n.Eval(words, false)
	if po[0]&1 != 0 {
		t.Fatal("mux selected the wrong input")
	}
}

func TestECCCorrectsSingleError(t *testing.T) {
	n := ECC("ecc", 16, 5)
	// Encode all-zeros: check bits must be the parity of empty sets = 0, so
	// with zero data and zero checks all outputs must be zero.
	words := make([]uint64, len(n.PIs))
	po, _, err := n.Eval(words, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range po {
		if w != 0 {
			t.Fatalf("clean word decoded with flipped bit %d", i)
		}
	}
	// Flip data bit 5: syndrome = 5, the corrector must flip it back.
	words[5] = ^uint64(0)
	po, _, err = n.Eval(words, false)
	if err != nil {
		t.Fatal(err)
	}
	if po[5]&1 != 0 {
		t.Fatal("single-bit error not corrected")
	}
	for i := 0; i < 16; i++ {
		if i != 5 && po[i]&1 != 0 {
			t.Fatalf("correction disturbed bit %d", i)
		}
	}
}

func TestPriorityGrantsHighest(t *testing.T) {
	n := Priority("p", 4, 1)
	words := make([]uint64, len(n.PIs))
	// Requests 1 and 3 asserted, enable on: only grant 3 fires.
	words[1] = ^uint64(0)
	words[3] = ^uint64(0)
	words[4] = ^uint64(0) // en0
	po, _, err := n.Eval(words, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := uint64(0)
		if i == 3 {
			want = 1
		}
		if po[i]&1 != want {
			t.Fatalf("grant%d = %d, want %d", i, po[i]&1, want)
		}
	}
}

func TestComparatorOrdering(t *testing.T) {
	n := Comparator("c", 4)
	eval := func(a, b uint64) (eq, gt, lt uint64) {
		words := make([]uint64, 8)
		for i := 0; i < 4; i++ {
			if a>>uint(i)&1 == 1 {
				words[i] = 1
			}
			if b>>uint(i)&1 == 1 {
				words[4+i] = 1
			}
		}
		po, _, err := n.Eval(words, false)
		if err != nil {
			t.Fatal(err)
		}
		return po[0] & 1, po[1] & 1, po[2] & 1
	}
	cases := []struct{ a, b uint64 }{{3, 3}, {9, 4}, {2, 11}, {0, 0}, {15, 14}}
	for _, tc := range cases {
		eq, gt, lt := eval(tc.a, tc.b)
		if (eq == 1) != (tc.a == tc.b) || (gt == 1) != (tc.a > tc.b) || (lt == 1) != (tc.a < tc.b) {
			t.Fatalf("compare(%d,%d) = eq%d gt%d lt%d", tc.a, tc.b, eq, gt, lt)
		}
	}
}

func TestDecoderOneHot(t *testing.T) {
	n := Decoder("d", 3)
	words := make([]uint64, len(n.PIs))
	words[1] = 1 // s1 -> value 2
	words[3] = 1 // enable
	po, _, err := n.Eval(words, false)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		want := uint64(0)
		if v == 2 {
			want = 1
		}
		if po[v]&1 != want {
			t.Fatalf("decoder line %d = %d", v, po[v]&1)
		}
	}
}

func TestFoldedCircuitsHaveNarrowOutputs(t *testing.T) {
	n, err := Generate("i2")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.POs) > 3 {
		t.Fatalf("i2 should be output-folded, has %d POs", len(n.POs))
	}
	wide, err := Generate("b9")
	if err != nil {
		t.Fatal(err)
	}
	if len(wide.POs) < 10 {
		t.Fatalf("b9 should keep its loose ends as POs, has %d", len(wide.POs))
	}
}

func TestXorTreeHelperBalanced(t *testing.T) {
	n := logic.New("x")
	var xs []logic.Signal
	for i := 0; i < 9; i++ {
		xs = append(xs, n.AddPI(string(rune('a'+i))))
	}
	root := xorTree(n, "t", xs)
	n.AddPO("o", root)
	// Parity of 9 inputs: flip each input one at a time.
	words := make([]uint64, 9)
	po, _, _ := n.Eval(words, false)
	if po[0]&1 != 0 {
		t.Fatal("even parity of zeros wrong")
	}
	words[4] = 1
	po, _, _ = n.Eval(words, false)
	if po[0]&1 != 1 {
		t.Fatal("single one must give odd parity")
	}
}
