// Package mcnc provides the benchmark workload for the paper's evaluation:
// the 39 MCNC circuits of Tables 1 and 2. The original suite is not
// redistributable here, so this package generates deterministic synthetic
// stand-ins under the same names: functional generators for the circuits
// whose structure is public knowledge (adders, ALUs, error-correction XOR
// trees, multiplexers, priority logic) and a seeded random-logic generator
// tuned so each circuit's post-mapping gate count lands near the paper's
// Table 2 "Org" column. See DESIGN.md §4 for why this substitution preserves
// the behaviour the algorithms depend on.
package mcnc

import (
	"fmt"
	"math/rand"

	"dualvdd/internal/logic"
)

// funcKind enumerates the node-function templates the random generator
// draws from, approximating the function mix of technology-independent
// MCNC logic after script.rugged.
type funcKind int

const (
	fAndLike funcKind = iota // one cube, random polarities
	fOrLike                  // one single-literal cube per fanin
	fXor2                    // 2-input parity
	fXnor2
	fMux // 3-input select
	fAoi // two-cube mixed and/or
)

// randomNet builds a connected random DAG of SOP nodes. Fanin selection
// prefers signals without a consumer yet, so almost all logic reaches the
// outputs and survives sweeping; a recency bias creates realistic depth.
func randomNet(name string, seed int64, nPI, nPO, nNodes int, fold bool) *logic.Network {
	rng := rand.New(rand.NewSource(seed))
	n := logic.New(name)
	var avail []logic.Signal
	for i := 0; i < nPI; i++ {
		avail = append(avail, n.AddPI(fmt.Sprintf("pi%d", i)))
	}
	unconsumed := map[logic.Signal]bool{}
	var unconsumedList []logic.Signal
	for _, s := range avail {
		unconsumed[s] = true
		unconsumedList = append(unconsumedList, s)
	}
	consume := func(s logic.Signal) {
		delete(unconsumed, s)
	}
	// Each node draws its fanins from a window reaching back from a random
	// cutoff. Low cutoffs create shallow logic hanging just above the PIs,
	// high cutoffs create deep chains — together they reproduce the wide
	// spread of output-cone depths real multi-output circuits have, which is
	// what gives CVS its non-critical regions to harvest.
	pickFanin := func(k int) []logic.Signal {
		picked := make([]logic.Signal, 0, k)
		seen := map[logic.Signal]bool{}
		reach := rng.Float64()
		reach *= reach // bias toward shallow windows
		limit := nPI + int(reach*float64(len(avail)-nPI))
		if limit < nPI {
			limit = nPI
		}
		if limit > len(avail) {
			limit = len(avail)
		}
		for len(picked) < k {
			var s logic.Signal
			if len(unconsumedList) > 0 && rng.Float64() < 0.55 {
				// Drain the never-used pool first (compacting lazily).
				i := rng.Intn(len(unconsumedList))
				s = unconsumedList[i]
				if !unconsumed[s] {
					unconsumedList[i] = unconsumedList[len(unconsumedList)-1]
					unconsumedList = unconsumedList[:len(unconsumedList)-1]
					continue
				}
			} else if limit > 0 {
				// Window-bounded pick, mildly biased toward the window top.
				off := rng.Intn(limit)
				if rng.Float64() < 0.5 {
					off = limit - 1 - rng.Intn(min(limit, 24))
				}
				s = avail[off]
			} else {
				s = avail[rng.Intn(len(avail))]
			}
			if seen[s] {
				continue
			}
			seen[s] = true
			picked = append(picked, s)
			consume(s)
		}
		return picked
	}

	polarity := func(k int) []byte {
		b := make([]byte, k)
		for i := range b {
			if rng.Float64() < 0.35 {
				b[i] = '0'
			} else {
				b[i] = '1'
			}
		}
		return b
	}

	for k := 0; k < nNodes; k++ {
		nin := 2
		switch r := rng.Float64(); {
		case r < 0.12:
			nin = 1
		case r < 0.60:
			nin = 2
		case r < 0.88:
			nin = 3
		default:
			nin = 4
		}
		if nin > len(avail) {
			nin = len(avail)
		}
		fanin := pickFanin(nin)
		var cubes []logic.Cube
		kind := fAndLike
		if nin == 2 {
			switch r := rng.Float64(); {
			case r < 0.40:
				kind = fAndLike
			case r < 0.72:
				kind = fOrLike
			case r < 0.88:
				kind = fXor2
			default:
				kind = fXnor2
			}
		} else if nin >= 3 {
			switch r := rng.Float64(); {
			case r < 0.40:
				kind = fAndLike
			case r < 0.70:
				kind = fOrLike
			case r < 0.85 && nin == 3:
				kind = fMux
			default:
				kind = fAoi
			}
		}
		switch kind {
		case fXor2:
			cubes = []logic.Cube{"10", "01"}
		case fXnor2:
			cubes = []logic.Cube{"11", "00"}
		case fMux:
			cubes = []logic.Cube{"1-0", "-11"}
		case fOrLike:
			for i := 0; i < nin; i++ {
				row := make([]byte, nin)
				for j := range row {
					row[j] = '-'
				}
				row[i] = polarity(1)[0]
				cubes = append(cubes, logic.Cube(row))
			}
		case fAoi:
			split := 1 + rng.Intn(nin-1)
			rowA := make([]byte, nin)
			rowB := make([]byte, nin)
			pol := polarity(nin)
			for j := 0; j < nin; j++ {
				rowA[j], rowB[j] = '-', '-'
				if j < split {
					rowA[j] = pol[j]
				} else {
					rowB[j] = pol[j]
				}
			}
			cubes = []logic.Cube{logic.Cube(rowA), logic.Cube(rowB)}
		default: // fAndLike, also the 1-input inverter/buffer case
			pol := polarity(nin)
			if nin == 1 {
				pol[0] = '0' // single-input nodes become inverters
			}
			cubes = []logic.Cube{logic.Cube(pol)}
		}
		out := n.AddNode(fmt.Sprintf("n%d", k), fanin, cubes)
		avail = append(avail, out)
		unconsumed[out] = true
		unconsumedList = append(unconsumedList, out)
	}

	// Outputs: everything still unconsumed must reach a PO. Folding loose
	// ends into OR trees narrows the circuit to its nominal PO count but
	// creates an output-side bottleneck that chokes CVS (the low cluster
	// cannot grow past a critical reduction tree) — which is exactly the
	// structure of MCNC's i2/i3, so folding is used only for such circuits.
	var loose []logic.Signal
	for _, s := range avail {
		if unconsumed[s] && !n.IsPI(s) {
			loose = append(loose, s)
		}
	}
	extra := 0
	for fold && len(loose) > nPO {
		a, b := loose[0], loose[1]
		loose = loose[2:]
		out := n.AddNode(fmt.Sprintf("fold%d", extra), []logic.Signal{a, b},
			[]logic.Cube{"1-", "-1"})
		extra++
		loose = append(loose, out)
	}
	for i, s := range loose {
		n.AddPO(fmt.Sprintf("po%d", i), s)
	}
	if len(loose) == 0 && len(avail) > nPI {
		n.AddPO("po0", avail[len(avail)-1])
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
