// Package mapper is the technology mapper standing in for SIS's "map"
// command in the paper's flow. It lowers a technology-independent SOP network
// onto the dual-voltage cell library in two steps that mirror the paper's
// setup: a minimum-delay covering ("map -n1 -AFG" with zero required time),
// and an area-recovery pass run against a timing constraint loosened by 20%,
// so that the mapped circuit's critical path sits at the constraint — the
// exact starting condition CVS, Dscale and Gscale assume.
//
// The covering itself is classic DAGON-style tree covering: the network is
// decomposed into a NAND2/inverter subject graph (with structural hashing),
// the graph is split into trees at multi-fanout points, cell patterns are
// themselves NAND2/inverter trees, and dynamic programming picks the best
// match per subject node.
package mapper

import (
	"fmt"

	"dualvdd/internal/logic"
)

// sgKind is the subject-graph node kind.
type sgKind uint8

const (
	sgLeaf sgKind = iota // reference to a primary input (or pattern variable)
	sgNAND
	sgINV
)

// sgNode is a node of the NAND2/INV subject graph. Nodes are hash-consed
// within a context, so structurally equal subexpressions are shared and the
// graph is a leaf-DAG.
type sgNode struct {
	id   int
	kind sgKind
	// fan holds the children: fan[0] for INV, fan[0] and fan[1] for NAND.
	fan [2]*sgNode
	// leaf is the PI signal index for subject leaves, or the variable (pin)
	// index for pattern leaves.
	leaf int
	// nfo is the consumer count among nodes reachable from the outputs.
	nfo int
}

// sgCtx is a hash-consing context for subject or pattern construction.
type sgCtx struct {
	nodes  []*sgNode
	byKey  map[[3]int]*sgNode
	leaves map[int]*sgNode
}

func newSgCtx() *sgCtx {
	return &sgCtx{byKey: make(map[[3]int]*sgNode), leaves: make(map[int]*sgNode)}
}

func (c *sgCtx) mkLeaf(ref int) *sgNode {
	if n, ok := c.leaves[ref]; ok {
		return n
	}
	n := &sgNode{id: len(c.nodes), kind: sgLeaf, leaf: ref}
	c.nodes = append(c.nodes, n)
	c.leaves[ref] = n
	return n
}

func (c *sgCtx) mkINV(x *sgNode) *sgNode {
	// Double inversions cancel structurally.
	if x.kind == sgINV {
		return x.fan[0]
	}
	key := [3]int{int(sgINV), x.id, -1}
	if n, ok := c.byKey[key]; ok {
		return n
	}
	n := &sgNode{id: len(c.nodes), kind: sgINV, fan: [2]*sgNode{x, nil}}
	c.nodes = append(c.nodes, n)
	c.byKey[key] = n
	return n
}

func (c *sgCtx) mkNAND(x, y *sgNode) *sgNode {
	// Canonical child order keeps hashing deterministic and match-friendly.
	if y.id < x.id {
		x, y = y, x
	}
	key := [3]int{int(sgNAND), x.id, y.id}
	if n, ok := c.byKey[key]; ok {
		return n
	}
	n := &sgNode{id: len(c.nodes), kind: sgNAND, fan: [2]*sgNode{x, y}}
	c.nodes = append(c.nodes, n)
	c.byKey[key] = n
	return n
}

func (c *sgCtx) mkAND(x, y *sgNode) *sgNode { return c.mkINV(c.mkNAND(x, y)) }
func (c *sgCtx) mkOR(x, y *sgNode) *sgNode  { return c.mkNAND(c.mkINV(x), c.mkINV(y)) }

// balancedAnd folds a literal list into a balanced AND tree; balancedOr does
// the same for OR. Using the same shapes for subject and pattern construction
// is what makes the patterns match.
func (c *sgCtx) balancedAnd(xs []*sgNode) *sgNode {
	switch len(xs) {
	case 0:
		panic("mapper: empty AND")
	case 1:
		return xs[0]
	}
	mid := (len(xs) + 1) / 2
	return c.mkAND(c.balancedAnd(xs[:mid]), c.balancedAnd(xs[mid:]))
}

func (c *sgCtx) balancedOr(xs []*sgNode) *sgNode {
	switch len(xs) {
	case 0:
		panic("mapper: empty OR")
	case 1:
		return xs[0]
	}
	mid := (len(xs) + 1) / 2
	return c.mkOR(c.balancedOr(xs[:mid]), c.balancedOr(xs[mid:]))
}

// sopToSg lowers an SOP cover to the subject graph, with inputs given as
// existing subject nodes. Returns nil for constant covers (handled upstream).
func (c *sgCtx) sopToSg(cubes []logic.Cube, inputs []*sgNode) *sgNode {
	var terms []*sgNode
	for _, cube := range cubes {
		var lits []*sgNode
		for i := 0; i < len(cube); i++ {
			switch cube[i] {
			case '1':
				lits = append(lits, inputs[i])
			case '0':
				lits = append(lits, c.mkINV(inputs[i]))
			}
		}
		if len(lits) == 0 {
			return nil // tautological cube: constant 1
		}
		terms = append(terms, c.balancedAnd(lits))
	}
	if len(terms) == 0 {
		return nil // empty cover: constant 0
	}
	return c.balancedOr(terms)
}

// subject is the fully built subject graph of a network.
type subject struct {
	ctx *sgCtx
	// rootOf maps each live logic signal to its subject node; PIs map to
	// leaves. Constant nodes are absent and recorded in constOf.
	rootOf map[logic.Signal]*sgNode
	// constOf records signals that turned out constant.
	constOf map[logic.Signal]bool
	// nameOf names subject nodes that correspond to logic-node outputs, so
	// mapped gates keep recognisable net names.
	nameOf map[*sgNode]string
}

// buildSubject lowers an entire (swept, validated) network into one shared
// subject graph whose only leaves are primary inputs. Node outputs are not
// forced to remain explicit: single-fanout logic crosses node boundaries and
// can be absorbed into one cell, giving the mapper a global view.
func buildSubject(n *logic.Network) (*subject, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	s := &subject{
		ctx:     newSgCtx(),
		rootOf:  make(map[logic.Signal]*sgNode),
		constOf: make(map[logic.Signal]bool),
		nameOf:  make(map[*sgNode]string),
	}
	for pi := 0; pi < len(n.PIs); pi++ {
		s.rootOf[logic.Signal(pi)] = s.ctx.mkLeaf(pi)
	}
	for _, k := range order {
		nd := n.Nodes[k]
		out := n.NodeSignal(k)
		if isC, v := nd.IsConst(); isC {
			s.constOf[out] = v
			continue
		}
		inputs := make([]*sgNode, len(nd.Fanin))
		constIn := false
		for i, f := range nd.Fanin {
			if _, ok := s.constOf[f]; ok {
				constIn = true
				break
			}
			inputs[i] = s.rootOf[f]
		}
		if constIn {
			return nil, fmt.Errorf("mapper: node %s has constant fanins; run Sweep before mapping", nd.Name)
		}
		root := s.ctx.sopToSg(nd.Cubes, inputs)
		if root == nil {
			// The cover simplified to a constant despite IsConst saying
			// otherwise (e.g. tautological cube mix).
			s.constOf[out] = len(nd.Cubes) > 0
			continue
		}
		s.rootOf[out] = root
		if _, taken := s.nameOf[root]; !taken {
			s.nameOf[root] = nd.Name
		}
	}
	return s, nil
}

// countFanouts walks the subject graph from the given output nodes and fills
// in consumer counts. Returns the set of reachable nodes in topological
// order (children before parents).
func countFanouts(outs []*sgNode) []*sgNode {
	seen := make(map[*sgNode]bool)
	var order []*sgNode
	var visit func(n *sgNode)
	visit = func(n *sgNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		switch n.kind {
		case sgNAND:
			visit(n.fan[0])
			visit(n.fan[1])
			n.fan[0].nfo++
			n.fan[1].nfo++
		case sgINV:
			visit(n.fan[0])
			n.fan[0].nfo++
		}
		order = append(order, n)
	}
	for _, o := range outs {
		visit(o)
	}
	return order
}
