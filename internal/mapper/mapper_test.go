package mapper

import (
	"math/rand"
	"testing"

	"dualvdd/internal/cell"
	"dualvdd/internal/logic"
	"dualvdd/internal/sim"
	"dualvdd/internal/sta"
)

// checkEquivalent simulates the logic network and the mapped circuit over
// random vectors and requires identical PO behaviour.
func checkEquivalent(t *testing.T, n *logic.Network, res *Result, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 16; trial++ {
		piWords := make([]uint64, len(n.PIs))
		for i := range piWords {
			piWords[i] = rng.Uint64()
		}
		wantPO, _, err := n.Eval(piWords, false)
		if err != nil {
			t.Fatalf("logic eval: %v", err)
		}
		// The mapped circuit preserves PI order.
		gotPO, err := sim.Eval(res.Circuit, piWords)
		if err != nil {
			t.Fatalf("netlist eval: %v", err)
		}
		for i := range wantPO {
			if wantPO[i] != gotPO[i] {
				t.Fatalf("trial %d: PO %s mismatch: logic %016x mapped %016x",
					trial, n.POs[i].Name, wantPO[i], gotPO[i])
			}
		}
	}
}

func mustMap(t *testing.T, n *logic.Network) *Result {
	t.Helper()
	res, err := Map(n, cell.Compass06(), DefaultOptions())
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := res.Circuit.Validate(); err != nil {
		t.Fatalf("mapped circuit invalid: %v", err)
	}
	return res
}

func TestMapSingleAND(t *testing.T) {
	n := logic.New("and2")
	a := n.AddPI("a")
	b := n.AddPI("b")
	o := n.AddNode("o", []logic.Signal{a, b}, []logic.Cube{"11"})
	n.AddPO("o", o)
	res := mustMap(t, n)
	if got := res.Circuit.NumLiveGates(); got != 1 {
		t.Fatalf("AND2 mapped to %d gates, want 1", got)
	}
	if fn := res.Circuit.Gates[0].Cell.Function; fn != cell.FAND2 {
		t.Fatalf("AND2 mapped to %s", fn)
	}
	checkEquivalent(t, n, res, 1)
}

func TestMapXORUsesXORCell(t *testing.T) {
	n := logic.New("xor2")
	a := n.AddPI("a")
	b := n.AddPI("b")
	o := n.AddNode("o", []logic.Signal{a, b}, []logic.Cube{"10", "01"})
	n.AddPO("o", o)
	res := mustMap(t, n)
	if got := res.Circuit.NumLiveGates(); got != 1 {
		t.Fatalf("XOR2 mapped to %d gates, want 1 (the XOR cell)", got)
	}
	if fn := res.Circuit.Gates[0].Cell.Function; fn != cell.FXOR2 {
		t.Fatalf("XOR2 mapped to %s, want XOR2", fn)
	}
	checkEquivalent(t, n, res, 2)
}

func TestMapMUXUsesMuxCell(t *testing.T) {
	n := logic.New("mux")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	// out = a!s + bs with fanin order (a, b, s).
	o := n.AddNode("o", []logic.Signal{a, b, s}, []logic.Cube{"1-0", "-11"})
	n.AddPO("o", o)
	res := mustMap(t, n)
	checkEquivalent(t, n, res, 3)
	if got := res.Circuit.NumLiveGates(); got != 1 {
		t.Fatalf("MUX mapped to %d gates, want 1", got)
	}
}

func TestMapInverterChainCancels(t *testing.T) {
	n := logic.New("invinv")
	a := n.AddPI("a")
	x := n.AddNode("x", []logic.Signal{a}, []logic.Cube{"0"})
	y := n.AddNode("y", []logic.Signal{x}, []logic.Cube{"0"})
	n.AddPO("y", y)
	res := mustMap(t, n)
	checkEquivalent(t, n, res, 4)
	// Double inversion cancels structurally; a single buffer-like mapping or
	// direct PI feed is acceptable, but never two inverters.
	if got := res.Circuit.NumLiveGates(); got > 1 {
		t.Fatalf("double inverter mapped to %d gates, want <= 1", got)
	}
}

func TestMapConstantPO(t *testing.T) {
	n := logic.New("const")
	n.AddPI("a")
	c1 := n.AddNode("c1", nil, []logic.Cube{""})
	c0 := n.AddNode("c0", nil, nil)
	n.AddPO("one", c1)
	n.AddPO("zero", c0)
	res := mustMap(t, n)
	checkEquivalent(t, n, res, 5)
	if got := res.Circuit.NumLiveGates(); got != 2 {
		t.Fatalf("constant POs mapped to %d gates, want 2 tie cells", got)
	}
}

func TestMapPOFedByPI(t *testing.T) {
	n := logic.New("wire")
	a := n.AddPI("a")
	buf := n.AddNode("b", []logic.Signal{a}, []logic.Cube{"1"})
	n.AddPO("o", buf)
	res := mustMap(t, n)
	checkEquivalent(t, n, res, 6)
	if got := res.Circuit.NumLiveGates(); got != 0 {
		t.Fatalf("PI-fed PO mapped to %d gates, want 0 after buffer collapse", got)
	}
}

func TestMapSharedFanout(t *testing.T) {
	// x = a&b feeds two consumers; the shared node must stay explicit.
	n := logic.New("shared")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	x := n.AddNode("x", []logic.Signal{a, b}, []logic.Cube{"11"})
	y := n.AddNode("y", []logic.Signal{x, c}, []logic.Cube{"11"})
	z := n.AddNode("z", []logic.Signal{x, c}, []logic.Cube{"1-", "-1"})
	n.AddPO("y", y)
	n.AddPO("z", z)
	res := mustMap(t, n)
	checkEquivalent(t, n, res, 7)
}

func TestMapFullAdderEquivalence(t *testing.T) {
	n := logic.New("fa")
	a := n.AddPI("a")
	b := n.AddPI("b")
	ci := n.AddPI("ci")
	sum := n.AddNode("sum", []logic.Signal{a, b, ci},
		[]logic.Cube{"100", "010", "001", "111"})
	co := n.AddNode("co", []logic.Signal{a, b, ci},
		[]logic.Cube{"11-", "-11", "1-1"})
	n.AddPO("sum", sum)
	n.AddPO("co", co)
	res := mustMap(t, n)
	checkEquivalent(t, n, res, 8)
}

// randomNetwork builds a random SOP network for fuzzing the mapper.
func randomNetwork(rng *rand.Rand, nPI, nNodes int) *logic.Network {
	n := logic.New("rand")
	for i := 0; i < nPI; i++ {
		n.AddPI(pickName("i", i))
	}
	var sigs []logic.Signal
	for i := 0; i < nPI; i++ {
		sigs = append(sigs, logic.Signal(i))
	}
	for k := 0; k < nNodes; k++ {
		nin := 1 + rng.Intn(4)
		if nin > len(sigs) {
			nin = len(sigs)
		}
		fanin := make([]logic.Signal, 0, nin)
		seen := map[logic.Signal]bool{}
		for len(fanin) < nin {
			s := sigs[rng.Intn(len(sigs))]
			if !seen[s] {
				seen[s] = true
				fanin = append(fanin, s)
			}
		}
		ncubes := 1 + rng.Intn(3)
		cubes := make([]logic.Cube, 0, ncubes)
		for c := 0; c < ncubes; c++ {
			lits := make([]byte, len(fanin))
			nonDash := false
			for i := range lits {
				switch rng.Intn(3) {
				case 0:
					lits[i] = '0'
					nonDash = true
				case 1:
					lits[i] = '1'
					nonDash = true
				default:
					lits[i] = '-'
				}
			}
			if !nonDash {
				lits[rng.Intn(len(lits))] = '1'
			}
			cubes = append(cubes, logic.Cube(lits))
		}
		sigs = append(sigs, n.AddNode(pickName("n", k), fanin, cubes))
	}
	// Expose the last few signals as POs.
	for i := 0; i < 4 && i < len(sigs); i++ {
		s := sigs[len(sigs)-1-i]
		n.AddPO(pickName("o", i), s)
	}
	return n
}

func pickName(prefix string, i int) string {
	return prefix + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
}

func TestMapRandomNetworksEquivalence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng, 3+rng.Intn(6), 5+rng.Intn(25))
		res, err := Map(n, cell.Compass06(), DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: Map: %v", seed, err)
		}
		checkEquivalent(t, n, res, seed+100)
	}
}

func TestMapDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := randomNetwork(rng, 6, 30)
	lib := cell.Compass06()
	r1, err := Map(n, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Map(n, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Circuit.NumLiveGates() != r2.Circuit.NumLiveGates() || r1.MinDelay != r2.MinDelay {
		t.Fatalf("mapping is not deterministic: %d/%.6f vs %d/%.6f",
			r1.Circuit.NumLiveGates(), r1.MinDelay, r2.Circuit.NumLiveGates(), r2.MinDelay)
	}
	for i := range r1.Circuit.Gates {
		if r1.Circuit.Gates[i].Cell != r2.Circuit.Gates[i].Cell {
			t.Fatalf("gate %d differs between runs: %s vs %s",
				i, r1.Circuit.Gates[i].Cell.Name, r2.Circuit.Gates[i].Cell.Name)
		}
	}
}

func TestAreaRecoveryKeepsTimingAndSavesArea(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := randomNetwork(rng, 8, 60)
	lib := cell.Compass06()
	noRec := DefaultOptions()
	noRec.AreaRecovery = false
	r0, err := Map(n, lib, noRec)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Map(n, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Circuit.Area() >= r0.Circuit.Area() {
		t.Fatalf("area recovery did not reduce area: %.2f -> %.2f",
			r0.Circuit.Area(), r1.Circuit.Area())
	}
	tm, err := sta.Analyze(r1.Circuit, lib, r1.Tspec)
	if err != nil {
		t.Fatal(err)
	}
	if !tm.Meets(1e-9) {
		t.Fatalf("recovered circuit misses timing: %.4f > %.4f", tm.WorstArrival, r1.Tspec)
	}
	// The recovered critical path should sit close to the constraint — this
	// is the precondition that makes CVS non-trivial (critical paths have no
	// slack to burn on voltage scaling).
	if tm.WorstArrival < 0.9*r1.Tspec {
		t.Fatalf("recovery left too much slack: %.4f of %.4f", tm.WorstArrival, r1.Tspec)
	}
	checkEquivalent(t, n, r1, 11)
}
