package mapper

import (
	"testing"

	"dualvdd/internal/cell"
	"dualvdd/internal/logic"
)

func TestConsingCancelsDoubleInversion(t *testing.T) {
	ctx := newSgCtx()
	a := ctx.mkLeaf(0)
	if got := ctx.mkINV(ctx.mkINV(a)); got != a {
		t.Fatal("INV(INV(x)) must cons back to x")
	}
}

func TestConsingSharesStructurallyEqualNodes(t *testing.T) {
	ctx := newSgCtx()
	a, b := ctx.mkLeaf(0), ctx.mkLeaf(1)
	n1 := ctx.mkNAND(a, b)
	n2 := ctx.mkNAND(b, a) // commutative: canonical order must share
	if n1 != n2 {
		t.Fatal("NAND(a,b) and NAND(b,a) must be the same consed node")
	}
	if ctx.mkLeaf(0) != a {
		t.Fatal("leaves must be shared per reference")
	}
}

func TestAndOrLoweringShapes(t *testing.T) {
	ctx := newSgCtx()
	a, b := ctx.mkLeaf(0), ctx.mkLeaf(1)
	and := ctx.mkAND(a, b)
	if and.kind != sgINV || and.fan[0].kind != sgNAND {
		t.Fatal("AND must lower to INV(NAND)")
	}
	or := ctx.mkOR(a, b)
	if or.kind != sgNAND || or.fan[0].kind != sgINV || or.fan[1].kind != sgINV {
		t.Fatal("OR must lower to NAND(INV,INV)")
	}
}

func TestSopToSgConstants(t *testing.T) {
	ctx := newSgCtx()
	a := ctx.mkLeaf(0)
	if got := ctx.sopToSg(nil, []*sgNode{a}); got != nil {
		t.Fatal("empty cover must lower to nil (constant 0)")
	}
	if got := ctx.sopToSg([]logic.Cube{"-"}, []*sgNode{a}); got != nil {
		t.Fatal("tautological cube must lower to nil (constant 1)")
	}
}

func TestBuildSubjectSharesAcrossNodes(t *testing.T) {
	// Two logic nodes computing the same function over the same fanins must
	// cons to one subject node — the mapper's global-view optimisation.
	n := logic.New("share")
	a := n.AddPI("a")
	b := n.AddPI("b")
	x := n.AddNode("x", []logic.Signal{a, b}, []logic.Cube{"11"})
	y := n.AddNode("y", []logic.Signal{a, b}, []logic.Cube{"11"})
	n.AddPO("ox", x)
	n.AddPO("oy", y)
	sub, err := buildSubject(n)
	if err != nil {
		t.Fatal(err)
	}
	if sub.rootOf[x] != sub.rootOf[y] {
		t.Fatal("identical covers must share a subject node")
	}
}

func TestCountFanoutsCountsConsumers(t *testing.T) {
	ctx := newSgCtx()
	a, b, c := ctx.mkLeaf(0), ctx.mkLeaf(1), ctx.mkLeaf(2)
	shared := ctx.mkNAND(a, b)
	top1 := ctx.mkNAND(shared, c)
	top2 := ctx.mkINV(shared)
	order := countFanouts([]*sgNode{top1, top2})
	if shared.nfo != 2 {
		t.Fatalf("shared node fanout = %d, want 2", shared.nfo)
	}
	// Children must precede parents in the order.
	pos := map[*sgNode]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos[shared] > pos[top1] || pos[a] > pos[shared] {
		t.Fatal("countFanouts order violates topology")
	}
}

func TestPatternsMatchTheirOwnFunctions(t *testing.T) {
	// Sanity for the whole pattern table: lowering a cell function's SOP and
	// matching it with the cell's own pattern must succeed and the covering
	// DP must offer that cell for the subject root.
	lib := cell.Compass06()
	for _, pat := range patterns() {
		// Skip shapes that legitimately cannot appear as one tree.
		if pat.fn == cell.FXOR3 {
			continue
		}
		n := logic.New("p")
		fanin := make([]logic.Signal, pat.numVars)
		for i := range fanin {
			fanin[i] = n.AddPI(string(rune('a' + i)))
		}
		tt := pat.fn.TruthTable()
		var cubes []logic.Cube
		for row := 0; row < 1<<uint(pat.numVars); row++ {
			if tt>>uint(row)&1 == 0 {
				continue
			}
			r := make([]byte, pat.numVars)
			for i := range r {
				if row>>uint(i)&1 == 1 {
					r[i] = '1'
				} else {
					r[i] = '0'
				}
			}
			cubes = append(cubes, logic.Cube(r))
		}
		out := n.AddNode("f", fanin, cubes)
		n.AddPO("f", out)
		res, err := Map(n, lib, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", pat.fn, err)
		}
		// Functional equivalence is what matters; minterm covers may map to
		// a different but correct structure.
		words := make([]uint64, pat.numVars)
		for i := range words {
			var w uint64
			for row := 0; row < 64; row++ {
				if row>>uint(i)&1 == 1 {
					w |= 1 << uint(row)
				}
			}
			words[i] = w
		}
		wantPO, _, err := n.Eval(words, false)
		if err != nil {
			t.Fatal(err)
		}
		rows := uint(1) << uint(pat.numVars)
		mask := ^uint64(0)
		if rows < 64 {
			mask = (uint64(1) << rows) - 1
		}
		gotPO, err := evalCircuit(res, words)
		if err != nil {
			t.Fatalf("%s: %v", pat.fn, err)
		}
		if gotPO&mask != wantPO[0]&mask {
			t.Fatalf("%s: mapped function differs: %x vs %x", pat.fn, gotPO&mask, wantPO[0]&mask)
		}
	}
}

// evalCircuit runs the mapped circuit over PI words and returns PO 0.
func evalCircuit(res *Result, words []uint64) (uint64, error) {
	order, err := res.Circuit.TopoOrder()
	if err != nil {
		return 0, err
	}
	vals := make([]uint64, res.Circuit.NumSignals())
	copy(vals, words)
	for _, gi := range order {
		g := res.Circuit.Gates[gi]
		in := make([]uint64, len(g.In))
		for i, s := range g.In {
			in[i] = vals[s]
		}
		vals[res.Circuit.GateSignal(gi)] = g.Cell.Function.Eval(in)
	}
	return vals[res.Circuit.POs[0].Src], nil
}

func TestMatchPatternBindingConsistency(t *testing.T) {
	// XOR's pattern has repeated variables; matching XOR-shaped subject
	// succeeds, but an AND-of-different-leaves shaped like XOR's tree with
	// inconsistent leaves must fail.
	lib := cell.Compass06()
	cs := &coverState{lib: lib, nominal: 0.004,
		isBoundary: map[*sgNode]bool{}, best: map[*sgNode]*matchRec{}, arr: map[*sgNode]float64{}}
	// Separate contexts: consing would otherwise share the common inner NAND
	// between the two shapes and legitimately block interior matching.
	ctx := newSgCtx()
	a, b := ctx.mkLeaf(0), ctx.mkLeaf(1)
	// True XOR(a,b) shape.
	xorShape := ctx.mkNAND(ctx.mkNAND(a, ctx.mkINV(b)), ctx.mkNAND(ctx.mkINV(a), b))
	countFanouts([]*sgNode{xorShape})
	ctx2 := newSgCtx()
	a2, b2, c2 := ctx2.mkLeaf(0), ctx2.mkLeaf(1), ctx2.mkLeaf(2)
	// Same tree shape but with c where the second 'a' should be.
	fakeShape := ctx2.mkNAND(ctx2.mkNAND(a2, ctx2.mkINV(b2)), ctx2.mkNAND(ctx2.mkINV(c2), b2))
	countFanouts([]*sgNode{fakeShape})
	var xorPat *pattern
	for _, p := range patterns() {
		if p.fn == cell.FXOR2 {
			xorPat = p
		}
	}
	bind := make([]*sgNode, 2)
	var trail []int
	if !cs.matchPattern(xorPat.root, xorShape, xorShape, bind, &trail) {
		t.Fatal("XOR pattern must match the XOR shape")
	}
	bind = make([]*sgNode, 2)
	trail = nil
	if cs.matchPattern(xorPat.root, fakeShape, fakeShape, bind, &trail) {
		t.Fatal("XOR pattern must reject inconsistent leaf bindings")
	}
}
