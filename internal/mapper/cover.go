package mapper

import (
	"fmt"

	"dualvdd/internal/cell"
	"dualvdd/internal/logic"
	"dualvdd/internal/netlist"
)

// matchRec is the best cover found for one subject node.
type matchRec struct {
	cl   *cell.Cell
	bind []*sgNode // subject node feeding each cell pin
	arr  float64   // estimated arrival under the nominal-load delay model
	area float64   // estimated subtree area (shared leaves overcounted)
}

// coverState carries the DP tables across matching and emission.
type coverState struct {
	lib     *cell.Library
	nominal float64
	// isBoundary marks subject nodes that must remain explicit nets: nodes
	// with more than one consumer and primary-output sources. Patterns may
	// not swallow them as internal nodes.
	isBoundary map[*sgNode]bool
	best       map[*sgNode]*matchRec
	arr        map[*sgNode]float64
}

// matchPattern attempts to match pattern node p against subject node s while
// binding pattern variables consistently. trail records bound variables for
// rollback. root is the subject node the whole pattern is rooted at; interior
// pattern nodes may only consume non-boundary, single-fanout subject nodes.
func (cs *coverState) matchPattern(p, s, root *sgNode, bind []*sgNode, trail *[]int) bool {
	if p.kind == sgLeaf {
		v := p.leaf
		if bind[v] == nil {
			bind[v] = s
			*trail = append(*trail, v)
			return true
		}
		return bind[v] == s
	}
	if s.kind != p.kind {
		return false
	}
	if s != root && (cs.isBoundary[s] || s.nfo != 1) {
		return false
	}
	if p.kind == sgINV {
		return cs.matchPattern(p.fan[0], s.fan[0], root, bind, trail)
	}
	// NAND: try both child orders, rolling back bindings between attempts.
	mark := len(*trail)
	if cs.matchPattern(p.fan[0], s.fan[0], root, bind, trail) &&
		cs.matchPattern(p.fan[1], s.fan[1], root, bind, trail) {
		return true
	}
	for _, v := range (*trail)[mark:] {
		bind[v] = nil
	}
	*trail = (*trail)[:mark]
	if cs.matchPattern(p.fan[0], s.fan[1], root, bind, trail) &&
		cs.matchPattern(p.fan[1], s.fan[0], root, bind, trail) {
		return true
	}
	for _, v := range (*trail)[mark:] {
		bind[v] = nil
	}
	*trail = (*trail)[:mark]
	return false
}

// cover runs the covering DP over the subject nodes in topological order
// (children first, as produced by countFanouts). Minimum estimated arrival
// wins; area breaks ties — the "-n1 -AFG" minimum-delay regime.
func (cs *coverState) cover(order []*sgNode) error {
	const eps = 1e-9
	for _, n := range order {
		if n.kind == sgLeaf {
			cs.arr[n] = 0
			continue
		}
		var best *matchRec
		for _, pat := range patterns() {
			cells := cs.lib.CellsOf(pat.fn)
			if len(cells) == 0 {
				continue
			}
			bind := make([]*sgNode, pat.numVars)
			var trail []int
			if !cs.matchPattern(pat.root, n, n, bind, &trail) {
				continue
			}
			for _, cl := range cells {
				arr, area := 0.0, cl.Area
				feasible := true
				for pin, leaf := range bind {
					if leaf == nil {
						feasible = false
						break
					}
					la, ok := cs.arr[leaf]
					if !ok {
						feasible = false
						break
					}
					if a := la + cl.Delay(pin, cs.nominal, 1.0); a > arr {
						arr = a
					}
					if lb := cs.best[leaf]; lb != nil {
						area += lb.area
					}
				}
				if !feasible {
					continue
				}
				if best == nil || arr < best.arr-eps ||
					(arr < best.arr+eps && area < best.area-eps) {
					best = &matchRec{cl: cl, bind: append([]*sgNode(nil), bind...), arr: arr, area: area}
				}
			}
		}
		if best == nil {
			return fmt.Errorf("mapper: no pattern matches subject node %d (kind %d)", n.id, n.kind)
		}
		cs.best[n] = best
		cs.arr[n] = best.arr
	}
	return nil
}

// emit lowers the chosen covers into a mapped netlist.
func (cs *coverState) emit(n *logic.Network, sub *subject) (*netlist.Circuit, error) {
	ckt := netlist.New(n.Name)
	sigOf := make(map[*sgNode]netlist.Signal)
	for pi := 0; pi < len(n.PIs); pi++ {
		s := ckt.AddPI(n.PIs[pi])
		sigOf[sub.ctx.mkLeaf(pi)] = s
	}
	used := make(map[string]bool)
	for _, pi := range n.PIs {
		used[pi] = true
	}
	uniqueName := func(want string) string {
		if want != "" && !used[want] {
			used[want] = true
			return want
		}
		for i := 0; ; i++ {
			cand := fmt.Sprintf("%s$u%d", want, i)
			if !used[cand] {
				used[cand] = true
				return cand
			}
		}
	}

	var emitNode func(sg *sgNode) (netlist.Signal, error)
	emitNode = func(sg *sgNode) (netlist.Signal, error) {
		if s, ok := sigOf[sg]; ok {
			return s, nil
		}
		rec := cs.best[sg]
		if rec == nil {
			return netlist.None, fmt.Errorf("mapper: emitting uncovered subject node %d", sg.id)
		}
		ins := make([]netlist.Signal, len(rec.bind))
		for pin, leaf := range rec.bind {
			s, err := emitNode(leaf)
			if err != nil {
				return netlist.None, err
			}
			ins[pin] = s
		}
		name := sub.nameOf[sg]
		if name == "" {
			name = fmt.Sprintf("$m%d", sg.id)
		}
		_, out := ckt.AddGate(uniqueName(name), rec.cl, ins...)
		sigOf[sg] = out
		return out, nil
	}

	// Tie gates for constant PO signals, shared per constant value.
	var tieSig [2]netlist.Signal
	tieSig[0], tieSig[1] = netlist.None, netlist.None
	tie := func(v bool) (netlist.Signal, error) {
		idx := 0
		fn := cell.FTIE0
		if v {
			idx, fn = 1, cell.FTIE1
		}
		if tieSig[idx] != netlist.None {
			return tieSig[idx], nil
		}
		cl := cs.lib.Smallest(fn)
		if cl == nil {
			return netlist.None, fmt.Errorf("mapper: library %s lacks tie cell %s", cs.lib.Name, fn)
		}
		_, out := ckt.AddGate(uniqueName(fmt.Sprintf("$tie%d", idx)), cl)
		tieSig[idx] = out
		return out, nil
	}

	for _, po := range n.POs {
		src := po.Src
		if v, isConst := sub.constOf[src]; isConst {
			s, err := tie(v)
			if err != nil {
				return nil, err
			}
			ckt.AddPO(po.Name, s)
			continue
		}
		root, ok := sub.rootOf[src]
		if !ok {
			return nil, fmt.Errorf("mapper: PO %s has no subject root", po.Name)
		}
		s, err := emitNode(root)
		if err != nil {
			return nil, err
		}
		ckt.AddPO(po.Name, s)
	}
	if err := ckt.Validate(); err != nil {
		return nil, fmt.Errorf("mapper: emitted netlist invalid: %w", err)
	}
	return ckt, nil
}
