package mapper

import (
	"fmt"

	"dualvdd/internal/cell"
	"dualvdd/internal/logic"
	"dualvdd/internal/netlist"
	"dualvdd/internal/sta"
)

// Options configures the mapping flow.
type Options struct {
	// SlackFactor loosens the timing constraint relative to the minimum
	// delay mapping; the paper uses 1.2 ("we loosen the timing constraint by
	// 20%").
	SlackFactor float64
	// NominalLoad (pF) is the load assumed during covering, before real
	// fanout loads are known.
	NominalLoad float64
	// AreaRecovery enables the post-mapping downsizing pass that trades the
	// loosened timing budget for area, like SIS's area-delay tradeoff map.
	AreaRecovery bool
	// Eps is the timing comparison tolerance in ns.
	Eps float64
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{SlackFactor: 1.2, NominalLoad: 0.004, AreaRecovery: true, Eps: 1e-9}
}

// Result is a mapped design ready for the voltage-scaling algorithms.
type Result struct {
	// Circuit is the mapped netlist (all gates at Vhigh).
	Circuit *netlist.Circuit
	// MinDelay is the critical path of the pure minimum-delay mapping.
	MinDelay float64
	// Tspec is the timing constraint handed to the scaling algorithms: the
	// critical-path delay of the relaxed, area-recovered mapping itself
	// (at most SlackFactor × MinDelay), following the paper's setup.
	Tspec float64
}

// Map lowers a logic network onto the library. The input is cloned and swept
// first, so callers keep their network intact.
func Map(n *logic.Network, lib *cell.Library, opts Options) (*Result, error) {
	if opts.SlackFactor < 1 {
		return nil, fmt.Errorf("mapper: SlackFactor %.3f must be >= 1", opts.SlackFactor)
	}
	work := n.Clone()
	work.Sweep()
	if err := work.Validate(); err != nil {
		return nil, err
	}
	sub, err := buildSubject(work)
	if err != nil {
		return nil, err
	}
	// Reachable subject nodes and fanout counts, from the PO roots.
	var outs []*sgNode
	for _, po := range work.POs {
		if root, ok := sub.rootOf[po.Src]; ok {
			outs = append(outs, root)
		}
	}
	order := countFanouts(outs)
	boundary := make(map[*sgNode]bool)
	for _, po := range work.POs {
		if root, ok := sub.rootOf[po.Src]; ok {
			boundary[root] = true
		}
	}
	cs := &coverState{
		lib:        lib,
		nominal:    opts.NominalLoad,
		isBoundary: boundary,
		best:       make(map[*sgNode]*matchRec, len(order)),
		arr:        make(map[*sgNode]float64, len(order)),
	}
	if err := cs.cover(order); err != nil {
		return nil, err
	}
	ckt, err := cs.emit(work, sub)
	if err != nil {
		return nil, err
	}
	minDelay, err := sta.MinDelay(ckt, lib)
	if err != nil {
		return nil, err
	}
	relaxed := minDelay * opts.SlackFactor
	if opts.AreaRecovery {
		if err := RecoverArea(ckt, lib, relaxed, opts.Eps); err != nil {
			return nil, err
		}
	}
	// The paper processes each circuit "using the delay of the mapped
	// circuit as the timing constraint": the constraint is the relaxed,
	// area-recovered netlist's own critical path, so critical paths start
	// with exactly zero slack. (This is why perfectly balanced circuits —
	// C499, C1355, mux, z4ml — gain nothing from CVS in Table 1: they have
	// no non-critical part until Gscale manufactures one.)
	final, err := sta.MinDelay(ckt, lib)
	if err != nil {
		return nil, err
	}
	return &Result{Circuit: ckt, MinDelay: minDelay, Tspec: final}, nil
}

// RecoverArea repeatedly downsizes gates while the circuit still meets tspec,
// consuming the loosened timing budget for area exactly like the paper's
// second map run ("so that the SIS mapper can perform area-delay tradeoff
// using the 20% timing slack"). Downsizing a gate slows only the gate itself
// (its output load is unchanged and its input pins shrink, which can only
// help its drivers), so a local slack check against fresh timing is safe.
func RecoverArea(ckt *netlist.Circuit, lib *cell.Library, tspec, eps float64) error {
	t, err := sta.Analyze(ckt, lib, tspec)
	if err != nil {
		return err
	}
	for pass := 0; pass < 16; pass++ {
		changed := 0
		order := t.Order()
		for i := len(order) - 1; i >= 0; i-- {
			gi := order[i]
			g := ckt.Gates[gi]
			smaller := lib.Downsize(g.Cell)
			if smaller == nil {
				continue
			}
			out := ckt.GateSignal(gi)
			newArr := t.GateArrivalWithCell(ckt, lib, gi, smaller, 0)
			delta := newArr - t.Arrival[out]
			if delta <= t.Slack[out]-eps {
				g.Cell = smaller
				changed++
				t, err = sta.Analyze(ckt, lib, tspec)
				if err != nil {
					return err
				}
			}
		}
		if changed == 0 {
			break
		}
	}
	if !t.Meets(eps) {
		return fmt.Errorf("mapper: area recovery broke timing (%.4f > %.4f)", t.WorstArrival, tspec)
	}
	return nil
}
