package mapper

import (
	"sort"
	"sync"

	"dualvdd/internal/cell"
)

// pattern is one NAND2/INV tree shape a cell can implement. Pattern leaves
// carry the cell pin index they bind. Several variants per cell cover the
// different associations a source cover can decompose into.
type pattern struct {
	fn      cell.Func
	root    *sgNode
	numVars int
}

// patBuilder assembles one pattern variant. vars are the pin leaves.
type patBuilder func(c *sgCtx, v []*sgNode) *sgNode

// patternSpecs lists the pattern variants per function. BUF and the tie cells
// have no gate-level structure and are handled outside covering; LCONV is
// inserted by the scaling algorithms, never by the mapper.
var patternSpecs = map[cell.Func][]patBuilder{
	cell.FINV:   {func(c *sgCtx, v []*sgNode) *sgNode { return c.mkINV(v[0]) }},
	cell.FNAND2: {func(c *sgCtx, v []*sgNode) *sgNode { return c.mkNAND(v[0], v[1]) }},
	cell.FNAND3: {
		func(c *sgCtx, v []*sgNode) *sgNode { return c.mkINV(c.balancedAnd(v[:3])) },
		func(c *sgCtx, v []*sgNode) *sgNode { return c.mkINV(c.mkAND(v[0], c.mkAND(v[1], v[2]))) },
	},
	cell.FNAND4: {
		func(c *sgCtx, v []*sgNode) *sgNode { return c.mkINV(c.balancedAnd(v[:4])) },
		func(c *sgCtx, v []*sgNode) *sgNode {
			return c.mkINV(c.mkAND(c.mkAND(c.mkAND(v[0], v[1]), v[2]), v[3]))
		},
	},
	cell.FNOR2: {func(c *sgCtx, v []*sgNode) *sgNode { return c.mkINV(c.mkOR(v[0], v[1])) }},
	cell.FNOR3: {
		func(c *sgCtx, v []*sgNode) *sgNode { return c.mkINV(c.balancedOr(v[:3])) },
		func(c *sgCtx, v []*sgNode) *sgNode { return c.mkINV(c.mkOR(v[0], c.mkOR(v[1], v[2]))) },
	},
	cell.FNOR4: {
		func(c *sgCtx, v []*sgNode) *sgNode { return c.mkINV(c.balancedOr(v[:4])) },
		func(c *sgCtx, v []*sgNode) *sgNode {
			return c.mkINV(c.mkOR(c.mkOR(c.mkOR(v[0], v[1]), v[2]), v[3]))
		},
	},
	cell.FAND2: {func(c *sgCtx, v []*sgNode) *sgNode { return c.mkAND(v[0], v[1]) }},
	cell.FAND3: {
		func(c *sgCtx, v []*sgNode) *sgNode { return c.balancedAnd(v[:3]) },
		func(c *sgCtx, v []*sgNode) *sgNode { return c.mkAND(v[0], c.mkAND(v[1], v[2])) },
	},
	cell.FAND4: {
		func(c *sgCtx, v []*sgNode) *sgNode { return c.balancedAnd(v[:4]) },
		func(c *sgCtx, v []*sgNode) *sgNode { return c.mkAND(c.mkAND(c.mkAND(v[0], v[1]), v[2]), v[3]) },
	},
	cell.FOR2: {func(c *sgCtx, v []*sgNode) *sgNode { return c.mkOR(v[0], v[1]) }},
	cell.FOR3: {
		func(c *sgCtx, v []*sgNode) *sgNode { return c.balancedOr(v[:3]) },
		func(c *sgCtx, v []*sgNode) *sgNode { return c.mkOR(v[0], c.mkOR(v[1], v[2])) },
	},
	cell.FOR4: {
		func(c *sgCtx, v []*sgNode) *sgNode { return c.balancedOr(v[:4]) },
		func(c *sgCtx, v []*sgNode) *sgNode { return c.mkOR(c.mkOR(c.mkOR(v[0], v[1]), v[2]), v[3]) },
	},
	cell.FXOR2: {func(c *sgCtx, v []*sgNode) *sgNode {
		return c.mkOR(c.mkAND(v[0], c.mkINV(v[1])), c.mkAND(c.mkINV(v[0]), v[1]))
	}},
	cell.FXNOR2: {func(c *sgCtx, v []*sgNode) *sgNode {
		return c.mkOR(c.mkAND(v[0], v[1]), c.mkAND(c.mkINV(v[0]), c.mkINV(v[1])))
	}},
	cell.FXOR3: {func(c *sgCtx, v []*sgNode) *sgNode {
		// SOP shape of a 3-input parity; shared inverters usually make this
		// unmatchable inside one tree, which mirrors real mappers rarely
		// instantiating wide parity cells from random logic.
		a, b, d := v[0], v[1], v[2]
		na, nb, nd := c.mkINV(a), c.mkINV(b), c.mkINV(d)
		return c.balancedOr([]*sgNode{
			c.balancedAnd([]*sgNode{a, nb, nd}),
			c.balancedAnd([]*sgNode{na, b, nd}),
			c.balancedAnd([]*sgNode{na, nb, d}),
			c.balancedAnd([]*sgNode{a, b, d}),
		})
	}},
	cell.FAOI21: {func(c *sgCtx, v []*sgNode) *sgNode {
		return c.mkINV(c.mkOR(c.mkAND(v[0], v[1]), v[2]))
	}},
	cell.FAOI22: {func(c *sgCtx, v []*sgNode) *sgNode {
		return c.mkINV(c.mkOR(c.mkAND(v[0], v[1]), c.mkAND(v[2], v[3])))
	}},
	cell.FAOI211: {
		func(c *sgCtx, v []*sgNode) *sgNode {
			return c.mkINV(c.balancedOr([]*sgNode{c.mkAND(v[0], v[1]), v[2], v[3]}))
		},
		func(c *sgCtx, v []*sgNode) *sgNode {
			return c.mkINV(c.mkOR(c.mkAND(v[0], v[1]), c.mkOR(v[2], v[3])))
		},
	},
	cell.FOAI21: {func(c *sgCtx, v []*sgNode) *sgNode {
		return c.mkINV(c.mkAND(c.mkOR(v[0], v[1]), v[2]))
	}},
	cell.FOAI22: {func(c *sgCtx, v []*sgNode) *sgNode {
		return c.mkINV(c.mkAND(c.mkOR(v[0], v[1]), c.mkOR(v[2], v[3])))
	}},
	cell.FOAI211: {
		func(c *sgCtx, v []*sgNode) *sgNode {
			return c.mkINV(c.balancedAnd([]*sgNode{c.mkOR(v[0], v[1]), v[2], v[3]}))
		},
		func(c *sgCtx, v []*sgNode) *sgNode {
			return c.mkINV(c.mkAND(c.mkOR(v[0], v[1]), c.mkAND(v[2], v[3])))
		},
	},
	cell.FAO21: {func(c *sgCtx, v []*sgNode) *sgNode {
		return c.mkOR(c.mkAND(v[0], v[1]), v[2])
	}},
	cell.FAO22: {func(c *sgCtx, v []*sgNode) *sgNode {
		return c.mkOR(c.mkAND(v[0], v[1]), c.mkAND(v[2], v[3]))
	}},
	cell.FOA21: {func(c *sgCtx, v []*sgNode) *sgNode {
		return c.mkAND(c.mkOR(v[0], v[1]), v[2])
	}},
	cell.FOA22: {func(c *sgCtx, v []*sgNode) *sgNode {
		return c.mkAND(c.mkOR(v[0], v[1]), c.mkOR(v[2], v[3]))
	}},
	cell.FMUX21: {func(c *sgCtx, v []*sgNode) *sgNode {
		// out = a·!s + b·s with s = pin 2.
		return c.mkOR(c.mkAND(v[0], c.mkINV(v[2])), c.mkAND(v[1], v[2]))
	}},
	cell.FMAJ3: {func(c *sgCtx, v []*sgNode) *sgNode {
		return c.balancedOr([]*sgNode{
			c.mkAND(v[0], v[1]), c.mkAND(v[1], v[2]), c.mkAND(v[0], v[2]),
		})
	}},
}

var (
	patOnce sync.Once
	patSet  []*pattern
)

// patterns returns the shared pattern set, built once. Functions are visited
// in a fixed order so that cost ties break identically on every run.
func patterns() []*pattern {
	patOnce.Do(func() {
		fns := make([]cell.Func, 0, len(patternSpecs))
		for fn := range patternSpecs {
			fns = append(fns, fn)
		}
		sort.Slice(fns, func(i, j int) bool { return fns[i] < fns[j] })
		for _, fn := range fns {
			builders := patternSpecs[fn]
			n := fn.NumInputs()
			for _, b := range builders {
				ctx := newSgCtx()
				vars := make([]*sgNode, n)
				for i := range vars {
					vars[i] = ctx.mkLeaf(i)
				}
				root := b(ctx, vars)
				patSet = append(patSet, &pattern{fn: fn, root: root, numVars: n})
			}
		}
	})
	return patSet
}
