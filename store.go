package dualvdd

import (
	"container/list"
	"sync"
)

// This file is the durable-state seam of the job service: the result cache
// and the job history Local (and fleet.Coordinator) keep are defined as
// interfaces here, with the in-memory reference implementations alongside.
// internal/store provides the disk-backed versions — a directory CAS keyed by
// Job.Key and an append-only job journal that replays on restart — and the
// differential suite holds both worlds to identical observable behavior. A
// process that wires the disk pair survives a crash with its cache and its
// terminal job history intact, which is what makes sweeps resumable: a
// restarted service answers every already-computed point from the CAS without
// recomputation.

// CachedResult is one content-addressed entry of a ResultCache: the complete
// outcome of a successfully finished job, keyed by its Job.Key. Results are
// always Circuit-stripped (the job surface never carries netlists), so the
// struct marshals losslessly to JSON — the disk CAS stores exactly this
// encoding.
type CachedResult struct {
	// Key is the hex SHA-256 content address (Job.Key).
	Key string `json:"key"`
	// Design summarizes the prepared circuit.
	Design *DesignInfo `json:"design"`
	// Results holds one FlowResult per requested algorithm, in request order.
	Results []*FlowResult `json:"results"`
}

// ResultCache is the pluggable content-addressed result store of a job
// service. Implementations must be safe for concurrent use; Get and Put never
// fail loudly (a cache is an optimization — a corrupt or missing entry is a
// miss, not an error). Entries are immutable once Put: callers must not
// mutate a returned CachedResult.
type ResultCache interface {
	// Get returns the entry under key, or false on a miss.
	Get(key string) (*CachedResult, bool)
	// Put stores the entry under res.Key, evicting per the implementation's
	// policy when full.
	Put(res *CachedResult)
	// Len is the current resident entry count.
	Len() int
	// Bytes is the approximate storage footprint of the resident entries; 0
	// when the implementation does not account bytes (the memory cache).
	Bytes() int64
	// Close releases the cache's resources (a no-op for memory).
	Close() error
}

// JobRecord is one entry of the job journal: a terminal job's identity,
// content key and final status. The journal is append-only — replaying it in
// order reconstructs the terminal job history of a previous process life.
type JobRecord struct {
	// Seq is the service's monotonic submission counter for this job; replay
	// resumes ID allocation past the largest seq seen.
	Seq int64 `json:"seq"`
	// Key is the job's content address.
	Key string `json:"key"`
	// Status is the terminal status snapshot (Circuit-stripped by
	// construction).
	Status JobStatus `json:"status"`
}

// JobStore is the pluggable durability seam for job history: every terminal
// job is appended, and a restarting service replays the log to make its
// previous life's jobs queryable again (and to resume its ID sequence).
// Implementations must be safe for concurrent Append; Replay is called once,
// before the service starts accepting jobs.
type JobStore interface {
	// Append records one terminal job.
	Append(rec JobRecord) error
	// Replay streams every record in append order. A non-nil error from fn
	// stops the replay and is returned.
	Replay(fn func(rec JobRecord) error) error
	// Close releases the store's resources.
	Close() error
}

// FallibleCache is the error-surfacing extension of ResultCache: the same
// store, with variants that report why an operation failed instead of
// swallowing it into a miss. Disk-backed caches implement it so callers that
// care (a DegradingCache tripping into memory mode, a runner counting
// StoreErrors) can tell a clean miss from a dying backend; Get/Put remain the
// swallowing surface for callers that do not.
type FallibleCache interface {
	ResultCache
	// GetErr is Get with the failure reason: (nil, false, nil) is a clean
	// miss, a non-nil error is a backend failure. A corrupt entry is a clean
	// miss — the entry is unusable but the backend is healthy.
	GetErr(key string) (*CachedResult, bool, error)
	// PutErr is Put with the failure reason; a non-nil error means the entry
	// was not stored.
	PutErr(res *CachedResult) error
}

// CacheGet reads key through c's error-surfacing interface when it has one,
// so wrappers and runners observe backend failures; a plain ResultCache never
// errors.
func CacheGet(c ResultCache, key string) (*CachedResult, bool, error) {
	if fc, ok := c.(FallibleCache); ok {
		return fc.GetErr(key)
	}
	res, ok := c.Get(key)
	return res, ok, nil
}

// CachePut writes res through c's error-surfacing interface when it has one.
func CachePut(c ResultCache, res *CachedResult) error {
	if fc, ok := c.(FallibleCache); ok {
		return fc.PutErr(res)
	}
	c.Put(res)
	return nil
}

// DegradingCache is the graceful-degradation wrapper for a disk-backed
// result cache: it serves from the primary until the primary errors
// persistently (threshold consecutive failures of either reads or writes —
// the two are tracked apart, so a full disk that still reads fine trips on
// its write failures alone), then trips into a bounded in-memory fallback so
// the service keeps caching — degraded, not down. While degraded it probes
// the primary on a put cadence and recovers the moment a probe succeeds.
// Entries written during failure windows land in the fallback, so they stay
// findable either way; the Degraded gauge (surfaced as the store_degraded
// metric) is how operators see the trip.
type DegradingCache struct {
	mu        sync.Mutex
	primary   FallibleCache
	fallback  *MemoryCache
	threshold int
	getFails  int   // consecutive primary read failures while healthy
	putFails  int   // consecutive primary write failures while healthy
	degraded  bool  // tripped into fallback mode
	puts      int   // degraded-mode put counter, drives probing
	errs      int64 // total primary failures observed
}

// degradeProbeEvery is the degraded-mode put cadence at which the primary is
// re-probed for recovery.
const degradeProbeEvery = 8

// NewDegradingCache wraps primary with an in-memory fallback bounded to
// fallbackEntries (<= 0 unbounded), tripping after threshold consecutive
// primary failures (<= 0 means 3).
func NewDegradingCache(primary FallibleCache, fallbackEntries, threshold int) *DegradingCache {
	if threshold <= 0 {
		threshold = 3
	}
	return &DegradingCache{
		primary:   primary,
		fallback:  NewMemoryCache(fallbackEntries),
		threshold: threshold,
	}
}

var _ ResultCache = (*DegradingCache)(nil)

// failGet and failPut record one primary failure of their operation class,
// tripping past the threshold. The classes count separately: a read success
// must not forgive a streak of write failures (the ENOSPC shape), nor the
// other way around.
func (c *DegradingCache) failGet() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errs++
	c.getFails++
	if c.getFails >= c.threshold {
		c.degraded = true
	}
}

func (c *DegradingCache) failPut() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errs++
	c.putFails++
	if c.putFails >= c.threshold {
		c.degraded = true
	}
}

// okGet and okPut record one primary success of their class while healthy.
func (c *DegradingCache) okGet() {
	c.mu.Lock()
	c.getFails = 0
	c.mu.Unlock()
}

func (c *DegradingCache) okPut() {
	c.mu.Lock()
	c.putFails = 0
	c.mu.Unlock()
}

// recoverPrimary leaves degraded mode after a successful probe.
func (c *DegradingCache) recoverPrimary() {
	c.mu.Lock()
	c.degraded = false
	c.getFails = 0
	c.putFails = 0
	c.puts = 0
	c.mu.Unlock()
}

// Degraded reports whether the cache is serving from its fallback.
func (c *DegradingCache) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// Errors is the total count of primary failures observed.
func (c *DegradingCache) Errors() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errs
}

// Get serves from the primary while healthy, falling back — for this key and,
// past the threshold, for good — when the primary errors. A primary miss
// still consults the fallback: entries written during failure windows live
// there.
func (c *DegradingCache) Get(key string) (*CachedResult, bool) {
	if c.Degraded() {
		return c.fallback.Get(key)
	}
	res, found, err := c.primary.GetErr(key)
	if err != nil {
		c.failGet()
		return c.fallback.Get(key)
	}
	c.okGet()
	if !found {
		return c.fallback.Get(key)
	}
	return res, true
}

// Put writes to the primary while healthy; a failed write lands in the
// fallback instead so the entry is not lost. While degraded, writes go to the
// fallback and every degradeProbeEvery-th one probes the primary for
// recovery.
func (c *DegradingCache) Put(res *CachedResult) {
	if c.Degraded() {
		c.fallback.Put(res)
		c.mu.Lock()
		c.puts++
		probe := c.puts%degradeProbeEvery == 0
		c.mu.Unlock()
		if probe {
			if err := c.primary.PutErr(res); err == nil {
				c.recoverPrimary()
			}
		}
		return
	}
	if err := c.primary.PutErr(res); err != nil {
		c.failPut()
		c.fallback.Put(res)
		return
	}
	c.okPut()
}

// Len is the resident entry count of whichever store is serving.
func (c *DegradingCache) Len() int {
	if c.Degraded() {
		return c.fallback.Len()
	}
	return c.primary.Len()
}

// Bytes is the serving store's footprint.
func (c *DegradingCache) Bytes() int64 {
	if c.Degraded() {
		return c.fallback.Bytes()
	}
	return c.primary.Bytes()
}

// Close releases both stores.
func (c *DegradingCache) Close() error {
	err := c.primary.Close()
	if cerr := c.fallback.Close(); err == nil {
		err = cerr
	}
	return err
}

// MemoryCache is the in-memory ResultCache: an LRU bounded by entry count.
// It is the reference implementation the disk CAS is differential-tested
// against, and the default cache of a Local runner.
type MemoryCache struct {
	mu    sync.Mutex
	limit int
	index map[string]*list.Element
	lru   *list.List // front = most recent; values are *CachedResult
}

// NewMemoryCache builds an LRU result cache bounded to limit entries
// (limit <= 0 means unbounded).
func NewMemoryCache(limit int) *MemoryCache {
	return &MemoryCache{
		limit: limit,
		index: make(map[string]*list.Element),
		lru:   list.New(),
	}
}

var _ ResultCache = (*MemoryCache)(nil)

// Get looks a key up and marks it most recently used.
func (c *MemoryCache) Get(key string) (*CachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*CachedResult), true
}

// Put inserts an entry, evicting the least-recently-used one past the limit.
func (c *MemoryCache) Put(res *CachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[res.Key]; ok {
		c.lru.MoveToFront(el)
		el.Value = res
		return
	}
	c.index[res.Key] = c.lru.PushFront(res)
	for c.limit > 0 && c.lru.Len() > c.limit {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.index, oldest.Value.(*CachedResult).Key)
	}
}

// Len is the resident entry count.
func (c *MemoryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes is 0: the memory cache does not account bytes.
func (c *MemoryCache) Bytes() int64 { return 0 }

// Close is a no-op.
func (c *MemoryCache) Close() error { return nil }

// MemoryJournal is the in-memory JobStore: an append-only slice. It loses
// everything with the process — it exists as the reference implementation the
// disk journal is differential-tested against, and for tests that want replay
// semantics without a filesystem.
type MemoryJournal struct {
	mu   sync.Mutex
	recs []JobRecord
}

// NewMemoryJournal builds an empty in-memory journal.
func NewMemoryJournal() *MemoryJournal { return &MemoryJournal{} }

var _ JobStore = (*MemoryJournal)(nil)

// Append records one terminal job.
func (s *MemoryJournal) Append(rec JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, rec)
	return nil
}

// Replay streams the records in append order.
func (s *MemoryJournal) Replay(fn func(rec JobRecord) error) error {
	s.mu.Lock()
	recs := append([]JobRecord(nil), s.recs...)
	s.mu.Unlock()
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Close is a no-op.
func (s *MemoryJournal) Close() error { return nil }
