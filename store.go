package dualvdd

import (
	"container/list"
	"sync"
)

// This file is the durable-state seam of the job service: the result cache
// and the job history Local (and fleet.Coordinator) keep are defined as
// interfaces here, with the in-memory reference implementations alongside.
// internal/store provides the disk-backed versions — a directory CAS keyed by
// Job.Key and an append-only job journal that replays on restart — and the
// differential suite holds both worlds to identical observable behavior. A
// process that wires the disk pair survives a crash with its cache and its
// terminal job history intact, which is what makes sweeps resumable: a
// restarted service answers every already-computed point from the CAS without
// recomputation.

// CachedResult is one content-addressed entry of a ResultCache: the complete
// outcome of a successfully finished job, keyed by its Job.Key. Results are
// always Circuit-stripped (the job surface never carries netlists), so the
// struct marshals losslessly to JSON — the disk CAS stores exactly this
// encoding.
type CachedResult struct {
	// Key is the hex SHA-256 content address (Job.Key).
	Key string `json:"key"`
	// Design summarizes the prepared circuit.
	Design *DesignInfo `json:"design"`
	// Results holds one FlowResult per requested algorithm, in request order.
	Results []*FlowResult `json:"results"`
}

// ResultCache is the pluggable content-addressed result store of a job
// service. Implementations must be safe for concurrent use; Get and Put never
// fail loudly (a cache is an optimization — a corrupt or missing entry is a
// miss, not an error). Entries are immutable once Put: callers must not
// mutate a returned CachedResult.
type ResultCache interface {
	// Get returns the entry under key, or false on a miss.
	Get(key string) (*CachedResult, bool)
	// Put stores the entry under res.Key, evicting per the implementation's
	// policy when full.
	Put(res *CachedResult)
	// Len is the current resident entry count.
	Len() int
	// Bytes is the approximate storage footprint of the resident entries; 0
	// when the implementation does not account bytes (the memory cache).
	Bytes() int64
	// Close releases the cache's resources (a no-op for memory).
	Close() error
}

// JobRecord is one entry of the job journal: a terminal job's identity,
// content key and final status. The journal is append-only — replaying it in
// order reconstructs the terminal job history of a previous process life.
type JobRecord struct {
	// Seq is the service's monotonic submission counter for this job; replay
	// resumes ID allocation past the largest seq seen.
	Seq int64 `json:"seq"`
	// Key is the job's content address.
	Key string `json:"key"`
	// Status is the terminal status snapshot (Circuit-stripped by
	// construction).
	Status JobStatus `json:"status"`
}

// JobStore is the pluggable durability seam for job history: every terminal
// job is appended, and a restarting service replays the log to make its
// previous life's jobs queryable again (and to resume its ID sequence).
// Implementations must be safe for concurrent Append; Replay is called once,
// before the service starts accepting jobs.
type JobStore interface {
	// Append records one terminal job.
	Append(rec JobRecord) error
	// Replay streams every record in append order. A non-nil error from fn
	// stops the replay and is returned.
	Replay(fn func(rec JobRecord) error) error
	// Close releases the store's resources.
	Close() error
}

// MemoryCache is the in-memory ResultCache: an LRU bounded by entry count.
// It is the reference implementation the disk CAS is differential-tested
// against, and the default cache of a Local runner.
type MemoryCache struct {
	mu    sync.Mutex
	limit int
	index map[string]*list.Element
	lru   *list.List // front = most recent; values are *CachedResult
}

// NewMemoryCache builds an LRU result cache bounded to limit entries
// (limit <= 0 means unbounded).
func NewMemoryCache(limit int) *MemoryCache {
	return &MemoryCache{
		limit: limit,
		index: make(map[string]*list.Element),
		lru:   list.New(),
	}
}

var _ ResultCache = (*MemoryCache)(nil)

// Get looks a key up and marks it most recently used.
func (c *MemoryCache) Get(key string) (*CachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*CachedResult), true
}

// Put inserts an entry, evicting the least-recently-used one past the limit.
func (c *MemoryCache) Put(res *CachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[res.Key]; ok {
		c.lru.MoveToFront(el)
		el.Value = res
		return
	}
	c.index[res.Key] = c.lru.PushFront(res)
	for c.limit > 0 && c.lru.Len() > c.limit {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.index, oldest.Value.(*CachedResult).Key)
	}
}

// Len is the resident entry count.
func (c *MemoryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes is 0: the memory cache does not account bytes.
func (c *MemoryCache) Bytes() int64 { return 0 }

// Close is a no-op.
func (c *MemoryCache) Close() error { return nil }

// MemoryJournal is the in-memory JobStore: an append-only slice. It loses
// everything with the process — it exists as the reference implementation the
// disk journal is differential-tested against, and for tests that want replay
// semantics without a filesystem.
type MemoryJournal struct {
	mu   sync.Mutex
	recs []JobRecord
}

// NewMemoryJournal builds an empty in-memory journal.
func NewMemoryJournal() *MemoryJournal { return &MemoryJournal{} }

var _ JobStore = (*MemoryJournal)(nil)

// Append records one terminal job.
func (s *MemoryJournal) Append(rec JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, rec)
	return nil
}

// Replay streams the records in append order.
func (s *MemoryJournal) Replay(fn func(rec JobRecord) error) error {
	s.mu.Lock()
	recs := append([]JobRecord(nil), s.recs...)
	s.mu.Unlock()
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Close is a no-op.
func (s *MemoryJournal) Close() error { return nil }
