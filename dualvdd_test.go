package dualvdd_test

import (
	"bytes"
	"strings"
	"testing"

	"dualvdd"
	"dualvdd/internal/blif"
	"dualvdd/internal/cell"
	"dualvdd/internal/sta"
)

func TestPrepareBenchmarkBasics(t *testing.T) {
	cfg := dualvdd.DefaultConfig()
	d, err := dualvdd.PrepareBenchmark("z4ml", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.OrgPower <= 0 {
		t.Fatalf("original power = %v", d.OrgPower)
	}
	if d.Tspec < d.MinDelay || d.Tspec > 1.2*d.MinDelay+1e-9 {
		t.Fatalf("Tspec %.4f outside [minDelay, 1.2*minDelay] = [%.4f, %.4f]",
			d.Tspec, d.MinDelay, 1.2*d.MinDelay)
	}
	if got := d.Circuit.NumLowGates(); got != 0 {
		t.Fatalf("fresh design has %d low gates", got)
	}
}

func TestPrepareBenchmarkUnknownName(t *testing.T) {
	if _, err := dualvdd.PrepareBenchmark("nonesuch", dualvdd.DefaultConfig()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestBenchmarksListMatchesPaperCount(t *testing.T) {
	if got := len(dualvdd.Benchmarks()); got != 39 {
		t.Fatalf("suite has %d circuits, the paper uses 39", got)
	}
}

func TestRunsDoNotMutateDesign(t *testing.T) {
	cfg := dualvdd.DefaultConfig()
	d, err := dualvdd.PrepareBenchmark("x2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Circuit.CollectStats()
	if _, err := d.RunGscale(); err != nil {
		t.Fatal(err)
	}
	if after := d.Circuit.CollectStats(); after != before {
		t.Fatalf("RunGscale mutated the pristine circuit: %+v -> %+v", before, after)
	}
}

func TestFlowResultTimingAlwaysMet(t *testing.T) {
	cfg := dualvdd.DefaultConfig()
	for _, name := range []string{"z4ml", "b9", "C432"} {
		d, err := dualvdd.PrepareBenchmark(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, run := range []func() (*dualvdd.FlowResult, error){d.RunCVS, d.RunDscale, d.RunGscale} {
			res, err := run()
			if err != nil {
				t.Fatal(err)
			}
			tm, err := sta.Analyze(res.Circuit, d.Lib, d.Tspec)
			if err != nil {
				t.Fatal(err)
			}
			if !tm.Meets(1e-6) {
				t.Fatalf("%s %s: timing violated: %.4f > %.4f",
					name, res.Algorithm, tm.WorstArrival, d.Tspec)
			}
		}
	}
}

func TestWriteBLIFRoundTripPreservesScaling(t *testing.T) {
	cfg := dualvdd.DefaultConfig()
	d, err := dualvdd.PrepareBenchmark("b9", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunDscale()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dualvdd.WriteBLIF(&buf, res.Circuit); err != nil {
		t.Fatal(err)
	}
	back, err := blif.ParseCircuit(strings.NewReader(buf.String()), d.Lib)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String()[:min(2000, buf.Len())])
	}
	if got, want := back.NumLowGates(), res.Circuit.NumLowGates(); got != want {
		t.Fatalf("round trip lost voltage assignments: %d vs %d", got, want)
	}
	if got, want := back.NumLCs(), res.Circuit.NumLCs(); got != want {
		t.Fatalf("round trip lost level converters: %d vs %d", got, want)
	}
}

func TestLoadBLIFFlow(t *testing.T) {
	src := `
.model tiny
.inputs a b c
.outputs f g
.names a b x
11 1
.names x c f
1- 1
-1 1
.names a c g
10 1
01 1
.end
`
	d, err := dualvdd.LoadBLIF(strings.NewReader(src), dualvdd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "tiny" {
		t.Fatalf("name = %s", d.Name)
	}
	res, err := d.RunCVS()
	if err != nil {
		t.Fatal(err)
	}
	if res.ImprovePct < 0 {
		t.Fatalf("CVS worsened power: %.2f%%", res.ImprovePct)
	}
}

func TestVoltageSweepMonotonicPotential(t *testing.T) {
	// The quadratic law: with everything else fixed, the per-gate power
	// ratio falls with Vlow. (Realised savings need not be monotone — the
	// delay penalty rises too — but the library-level ratio must be.)
	prev := 1.0
	for _, vlow := range []float64{4.7, 4.3, 3.9} {
		lib := cell.Compass06At(5.0, vlow)
		if r := lib.PowerRatio(); r >= prev {
			t.Fatalf("power ratio %.3f not decreasing at Vlow=%.1f", r, vlow)
		} else {
			prev = r
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
